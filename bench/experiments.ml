(* The experiment harness: one table per claim of the paper (see
   DESIGN.md section 4 and EXPERIMENTS.md).  Every table prints the
   paper's closed form next to the measured value; agreement columns
   are computed, not asserted, so the bench never aborts half-way. *)

open Colring_engine
open Colring_core
open Colring_stats
module Classic = Colring_classic
module Compose = Colring_compose
module LB = Colring_lowerbound

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n\n"

let sched_of_seed seed = Scheduler.random (Rng.create ~seed)

let yes_no = Table.cell_bool

(* Print a finished table and, when a journal sink is attached, emit
   one [row] record per data row, keyed by the column headers.  The
   journal carries the rendered cell strings, so `jq` can rebuild
   exactly what the table showed (README has the recipe). *)
let print_table ~sink ~name t =
  Table.print t;
  if sink.Sink.enabled then begin
    let header = Table.header t in
    List.iter
      (fun cells ->
        sink.Sink.on_row ~table:name
          (List.map2 (fun h c -> (h, Sink.String c)) header cells))
      (Table.data_rows t)
  end

module Pool = Colring_runtime.Pool

(* Independent table rows (or trials) are computed on the domain pool,
   then appended in case order, so a table is bit-identical for every
   domain count; only row *computations* run in parallel — nothing in a
   parallel closure may print. *)
let par_rows ~jobs cases f =
  let a = Array.of_list cases in
  Array.to_list (Pool.map ~jobs (Array.length a) (fun i -> f a.(i)))

(* ------------------------------------------------------------------ *)
(* E1: Algorithm 1 — n * ID_max pulses, stabilization (Cor. 13). *)

let e1 ~sink ~jobs ~quick =
  section
    "E1  Algorithm 1 (warm-up, oriented, stabilizing)  --  paper: total = n*ID_max\n\
     [Section 3.1, Lemmas 6-14, Corollary 13]";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("ids", Table.Left);
        ("paper", Table.Right);
        ("measured", Table.Right);
        ("ratio", Table.Right);
        ("quiescent", Table.Left);
        ("max elected", Table.Left);
        ("rho=sig=IDmax", Table.Left);
      ]
  in
  let row ~ids ~label seed =
    let n = Array.length ids in
    let topo = Topology.oriented n in
    let report, net =
      Election.run Election.Algo1 ~topo ~ids ~sched:(sched_of_seed seed)
    in
    let id_max = Ids.id_max ids in
    let counters_ok =
      Array.for_all
        (fun v ->
          Network.inspect_counter net v "rho_cw" = id_max
          && Network.inspect_counter net v "sigma_cw" = id_max)
        (Array.init n Fun.id)
    in
    ( [
        Table.cell_int n;
        Table.cell_int id_max;
        label;
        Table.cell_int report.expected_sends;
        Table.cell_int report.sends;
        Table.cell_ratio
          (float_of_int report.sends /. float_of_int report.expected_sends);
        yes_no report.quiescent;
        yes_no (report.leader_is_max && report.roles_ok);
        yes_no counters_ok;
      ],
      (float_of_int report.expected_sends, float_of_int report.sends) )
  in
  let ns = if quick then [ 2; 8; 32 ] else [ 2; 4; 8; 16; 32; 64; 128 ] in
  let dense_rows =
    par_rows ~jobs ns (fun n ->
        row ~ids:(Ids.dense (Rng.create ~seed:n) ~n) ~label:"dense 1..n" n)
  in
  let idmaxes = if quick then [ 64; 1024 ] else [ 16; 64; 256; 1024; 4096 ] in
  let sparse_rows =
    par_rows ~jobs idmaxes (fun id_max ->
        row
          ~ids:(Ids.distinct (Rng.create ~seed:id_max) ~n:16 ~id_max)
          ~label:"sparse n=16" id_max)
  in
  List.iter (fun (cells, _) -> Table.add_row t cells) dense_rows;
  Table.add_rule t;
  List.iter (fun (cells, _) -> Table.add_row t cells) sparse_rows;
  print_table ~sink ~name:"e1" t;
  Printf.printf "max relative error vs paper formula: %.6f\n"
    (Fit.max_rel_err (List.map snd (dense_rows @ sparse_rows)))

(* Lemma 16/17: duplicated IDs, including several copies of the max. *)
let e1_dup ~sink ~jobs ~quick =
  section
    "E1b Algorithm 1 with non-unique IDs  --  paper: Lemma 16/17 (same totals;\n\
     every max-ID node ends Leader)";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("#max copies", Table.Right);
        ("paper", Table.Right);
        ("measured", Table.Right);
        ("leaders = #copies", Table.Left);
        ("quiescent", Table.Left);
      ]
  in
  let cases = if quick then [ (8, 12, 2) ] else [ (8, 12, 2); (16, 40, 4); (32, 32, 8); (24, 100, 1) ] in
  par_rows ~jobs cases (fun (n, id_max, dup_max) ->
      let ids = Ids.duplicated (Rng.create ~seed:n) ~n ~id_max ~dup_max in
      let topo = Topology.oriented n in
      let _, net =
        Election.run Election.Algo1 ~topo ~ids ~sched:(sched_of_seed (n + 1))
      in
      let leaders =
        Array.fold_left
          (fun acc (o : Output.t) ->
            if Output.equal_role o.role Output.Leader then acc + 1 else acc)
          0 (Network.outputs net)
      in
      [
        Table.cell_int n;
        Table.cell_int id_max;
        Table.cell_int dup_max;
        Table.cell_int (n * id_max);
        Table.cell_int (Metrics.sends (Network.metrics net));
        yes_no (leaders = dup_max);
        yes_no (Network.is_quiescent net);
      ])
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e1b" t

(* ------------------------------------------------------------------ *)
(* E2: Algorithm 2 — n(2 ID_max + 1), quiescent termination (Thm 1). *)

let e2 ~sink ~jobs ~quick =
  section
    "E2  Algorithm 2 (oriented, quiescently terminating)  --  paper:\n\
     total = n(2*ID_max+1), split n*ID_max cw / n*(ID_max+1) ccw,\n\
     unique max-ID leader, leader terminates last, zero pulses after any\n\
     termination  [Section 3.2, Theorem 1]";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("scheduler", Table.Left);
        ("paper", Table.Right);
        ("measured", Table.Right);
        ("cw", Table.Right);
        ("ccw", Table.Right);
        ("verdicts", Table.Left);
      ]
  in
  let verdict (r : Election.report) =
    if Election.ok r then "all-ok"
    else
      String.concat ","
        (List.filter_map Fun.id
           [
             (if r.sends <> r.expected_sends then Some "count" else None);
             (if not r.quiescent then Some "quiescence" else None);
             (if not r.leader_is_max then Some "leader" else None);
             (if r.termination_order_ok <> Some true then Some "order" else None);
             (if r.post_term_deliveries > 0 then Some "post-term" else None);
           ])
  in
  let row ~n ~id_max ~sched ~seed =
    let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max in
    let r =
      Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids ~sched
    in
    [
      Table.cell_int n;
      Table.cell_int id_max;
      sched.Scheduler.name;
      Table.cell_int r.expected_sends;
      Table.cell_int r.sends;
      Table.cell_int r.sends_cw;
      Table.cell_int r.sends_ccw;
      verdict r;
    ]
  in
  let ns = if quick then [ 4; 16 ] else [ 2; 4; 8; 16; 32; 64; 128 ] in
  par_rows ~jobs ns (fun n ->
      row ~n ~id_max:(2 * n) ~sched:(sched_of_seed n) ~seed:n)
  |> List.iter (Table.add_row t);
  Table.add_rule t;
  (* The count is schedule-independent: same instance, many adversaries.
     Stateful schedulers are created once per case, used by one row. *)
  par_rows ~jobs
    (Scheduler.all_deterministic () @ [ sched_of_seed 123 ])
    (fun sched -> row ~n:12 ~id_max:48 ~sched ~seed:99)
  |> List.iter (Table.add_row t);
  Table.add_rule t;
  (* ID_max scaling at fixed n: the term the lower bound says is needed. *)
  let idmaxes = if quick then [ 256; 4096 ] else [ 16; 64; 256; 1024; 4096; 16384 ] in
  par_rows ~jobs idmaxes (fun id_max ->
      row ~n:8 ~id_max ~sched:(sched_of_seed id_max) ~seed:id_max)
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e2" t

(* ------------------------------------------------------------------ *)
(* E3/E4: Algorithm 3 on non-oriented rings. *)

let e3_e4 ~sink ~jobs ~quick =
  section
    "E3/E4  Algorithm 3 (non-oriented, stabilizing; elects leader AND\n\
     orients the ring)  --  paper: doubled IDs n(4*ID_max-1) (Prop. 15),\n\
     improved IDs n(2*ID_max+1) (Theorem 2)";
  let t =
    Table.create
      [
        ("scheme", Table.Left);
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("flips", Table.Right);
        ("paper", Table.Right);
        ("measured", Table.Right);
        ("ratio", Table.Right);
        ("oriented ok", Table.Left);
        ("max elected", Table.Left);
        ("quiescent", Table.Left);
      ]
  in
  let row scheme ~n ~seed =
    let rng = Rng.create ~seed in
    let ids = Ids.distinct rng ~n ~id_max:(3 * n) in
    let topo = Topology.random_non_oriented rng n in
    let flips =
      Array.fold_left
        (fun acc v -> if Topology.flipped topo v then acc + 1 else acc)
        0
        (Array.init n Fun.id)
    in
    let r =
      Election.run_report (Election.Algo3 scheme) ~topo ~ids
        ~sched:(Scheduler.random (Rng.split rng))
    in
    [
      (match scheme with
      | Algo3.Doubled -> "doubled (Prop15)"
      | Algo3.Improved -> "improved (Thm2)");
      Table.cell_int n;
      Table.cell_int r.id_max;
      Table.cell_int flips;
      Table.cell_int r.expected_sends;
      Table.cell_int r.sends;
      Table.cell_ratio (float_of_int r.sends /. float_of_int r.expected_sends);
      yes_no (r.orientation_ok = Some true);
      yes_no (r.leader_is_max && r.roles_ok);
      yes_no r.quiescent;
    ]
  in
  let ns = if quick then [ 4; 16 ] else [ 2; 4; 8; 16; 32; 64 ] in
  par_rows ~jobs ns (fun n -> row Algo3.Doubled ~n ~seed:n)
  |> List.iter (Table.add_row t);
  Table.add_rule t;
  par_rows ~jobs ns (fun n -> row Algo3.Improved ~n ~seed:(n + 7))
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e3_e4" t

(* ------------------------------------------------------------------ *)
(* E5: anonymous rings (Algorithm 4 + Algorithm 3; Theorem 3). *)

let e5 ~sink ~jobs ~quick =
  section
    "E5  Anonymous rings (Theorem 3, Lemma 18)  --  paper: sampled IDs have\n\
     a unique maximum w.h.p., of magnitude n^Theta(c); election succeeds\n\
     iff the maximum is unique; complexity n^O(1) pulses";
  let trials = if quick then 60 else 400 in
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("c", Table.Right);
        ("trials", Table.Right);
        ("unique-max rate", Table.Right);
        ("median ID_max", Table.Right);
        ("p90 ID_max", Table.Right);
        ("log2(IDmax)/log2(n)", Table.Right);
      ]
  in
  let ns = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128 ] in
  let cs = [ 1.0; 2.0; 3.0 ] in
  let grid = List.concat_map (fun n -> List.map (fun c -> (n, c)) cs) ns in
  par_rows ~jobs grid (fun (n, c) ->
      let unique = ref 0 in
      let idmaxes = Summary.create () in
      let exponents = Summary.create () in
      for seed = 1 to trials do
        let ids =
          Sampling.sample_ring (Rng.create ~seed:(seed + (n * 100_000))) ~c ~n
        in
        if Sampling.max_is_unique ids then incr unique;
        let m = Ids.id_max ids in
        Summary.add_int idmaxes m;
        Summary.add exponents (log (float_of_int m) /. log (float_of_int n))
      done;
      [
        Table.cell_int n;
        Table.cell_float ~decimals:1 c;
        Table.cell_int trials;
        Table.cell_ratio (float_of_int !unique /. float_of_int trials);
        Table.cell_float ~decimals:0 (Summary.median idmaxes);
        Table.cell_float ~decimals:0 (Summary.quantile idmaxes 0.9);
        Table.cell_float ~decimals:2 (Summary.mean exponents);
      ])
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e5_sampling" t;
  (* End-to-end elections on the feasible draws (pulse count is
     Theta(n * ID_max), so skip astronomically-large samples). *)
  let t2 =
    Table.create
      ~title:
        "End-to-end: Algorithm 4 sampling + Algorithm 3 (improved) on random\n\
         non-oriented anonymous rings (instances with ID_max <= 20000)"
      [
        ("n", Table.Right);
        ("c", Table.Right);
        ("runs", Table.Right);
        ("skipped(too big)", Table.Right);
        ("elected unique max", Table.Right);
        ("failed (max tie)", Table.Right);
        ("mean pulses", Table.Right);
        ("mean n(2IDmax+1)", Table.Right);
      ]
  in
  let trials2 = if quick then 30 else 100 in
  (* Per-trial engine runs are the heavy part here: fan the seeds out on
     the pool and fold the per-seed verdicts in seed order. *)
  List.iter
    (fun n ->
      List.iter
        (fun c ->
          let outcomes =
            par_rows ~jobs
              (List.init trials2 (fun i -> i + 1))
              (fun seed ->
                let rng = Rng.create ~seed:(seed + (n * 7919)) in
                let ids = Sampling.sample_ring rng ~c ~n in
                if Ids.id_max ids > 20_000 then `Skipped
                else begin
                  let topo = Topology.random_non_oriented rng n in
                  let r =
                    Election.run_report (Election.Algo3 Algo3.Improved) ~topo
                      ~ids
                      ~sched:(Scheduler.random (Rng.split rng))
                  in
                  `Ran
                    ( r.sends,
                      r.expected_sends,
                      Sampling.max_is_unique ids,
                      Election.ok r )
                end)
          in
          let ran = ref 0 and skipped = ref 0 and okc = ref 0 and ties = ref 0 in
          let pulses = Summary.create () and expected = Summary.create () in
          List.iter
            (function
              | `Skipped -> incr skipped
              | `Ran (sends, expected_sends, unique_max, ok) ->
                  incr ran;
                  Summary.add_int pulses sends;
                  Summary.add_int expected expected_sends;
                  if unique_max then begin
                    if ok then incr okc
                  end
                  else incr ties)
            outcomes;
          Table.add_row t2
            [
              Table.cell_int n;
              Table.cell_float ~decimals:1 c;
              Table.cell_int !ran;
              Table.cell_int !skipped;
              Table.cell_int !okc;
              Table.cell_int !ties;
              Table.cell_float ~decimals:0 (Summary.mean pulses);
              Table.cell_float ~decimals:0 (Summary.mean expected);
            ])
        [ 1.0 ])
    (if quick then [ 8 ] else [ 8; 16 ]);
  print_table ~sink ~name:"e5_end_to_end" t2

(* ------------------------------------------------------------------ *)
(* E9: Proposition 19 resampling. *)

let e9 ~sink ~jobs ~quick =
  section
    "E9  Proposition 19 (ID resampling during Algorithm 3)  --  paper:\n\
     at quiescence all IDs are distinct w.h.p.; pulse dynamics unchanged";
  let trials = if quick then 20 else 100 in
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("trials", Table.Right);
        ("all-distinct rate", Table.Right);
        ("count unchanged", Table.Left);
        ("max kept", Table.Left);
      ]
  in
  List.iter
    (fun (n, id_max) ->
      (* Per-trial resampling runs fan out on the pool; the verdicts
         fold associatively, so the reduce is order-insensitive. *)
      let verdicts =
        par_rows ~jobs
          (List.init trials (fun i -> i + 1))
          (fun seed ->
            let rng = Rng.create ~seed:(seed * 31) in
            let ids = Ids.distinct rng ~n ~id_max in
            let topo = Topology.random_non_oriented rng n in
            let r =
              Election.run_report Election.Algo3_resample ~topo ~ids
                ~sched:(Scheduler.random (Rng.split rng))
            in
            let sorted = Array.copy r.final_ids in
            Array.sort compare sorted;
            let dup = ref false in
            for i = 0 to n - 2 do
              if sorted.(i) = sorted.(i + 1) then dup := true
            done;
            (not !dup, r.sends = r.expected_sends, r.leader_is_max))
      in
      let distinct = ref 0 and counts_ok = ref true and max_ok = ref true in
      List.iter
        (fun (is_distinct, count_ok, is_max) ->
          if is_distinct then incr distinct;
          if not count_ok then counts_ok := false;
          if not is_max then max_ok := false)
        verdicts;
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int id_max;
          Table.cell_int trials;
          Table.cell_ratio (float_of_int !distinct /. float_of_int trials);
          yes_no !counts_ok;
          yes_no !max_ok;
        ])
    (if quick then [ (8, 10_000) ] else [ (8, 10_000); (16, 50_000); (12, 500) ]);
  print_table ~sink ~name:"e9" t

(* ------------------------------------------------------------------ *)
(* E6: the lower bound (Theorem 4/20, Lemmas 22-24). *)

let e6 ~sink ~quick =
  section
    "E6  Lower bound (Theorem 20)  --  paper: any terminating content-\n\
     oblivious election sends >= n*floor(log2(k/n)) pulses when k IDs are\n\
     assignable.  We extract Algorithm 2's solitude patterns (Def. 21),\n\
     check Lemma 22 uniqueness, and compare the pigeonhole bound with the\n\
     algorithm's actual worst-case cost n(2k+1).";
  let kmax = if quick then 512 else 4096 in
  let algo2 ~id = Algo2.program ~id in
  let tagged = LB.Solitude.extract_range algo2 ~lo:1 ~hi:kmax in
  Printf.printf "solitude patterns extracted for IDs 1..%d\n" kmax;
  Printf.printf "Lemma 22 (all patterns distinct): %s\n\n"
    (match LB.Analysis.first_collision tagged with
    | None -> "holds"
    | Some (i, j) -> Printf.sprintf "VIOLATED by ids %d and %d" i j);
  let t =
    Table.create
      [
        ("k (IDs)", Table.Right);
        ("n", Table.Right);
        ("paper bound n*log(k/n)", Table.Right);
        ("pigeonhole on measured patterns", Table.Right);
        ("Algorithm 2 worst actual n(2k+1)", Table.Right);
        ("bound <= actual", Table.Left);
      ]
  in
  let ks = if quick then [ 64; 512 ] else [ 64; 256; 1024; 4096 ] in
  List.iter
    (fun k ->
      let pats =
        List.filter_map (fun (id, p) -> if id <= k then Some p else None) tagged
      in
      List.iter
        (fun n ->
          if n <= k then begin
            let formula = Formulas.lower_bound ~n ~k in
            let empirical = LB.Analysis.implied_message_bound pats ~n in
            let actual = Formulas.algo2_total ~n ~id_max:k in
            Table.add_row t
              [
                Table.cell_int k;
                Table.cell_int n;
                Table.cell_int formula;
                Table.cell_int empirical;
                Table.cell_int actual;
                yes_no (formula <= empirical && empirical <= actual);
              ]
          end)
        [ 1; 2; 4; 8; 16 ])
    ks;
  print_table ~sink ~name:"e6" t;
  Printf.printf
    "Note: the pigeonhole column uses the *measured* pattern set, so it can\n\
     exceed the closed-form floor; Theorem 20 only promises the floor.\n"

(* E6b: the constructive adversary replayed end to end. *)
let e6b ~sink ~quick =
  section
    "E6b Theorem 20 adversary, replayed  --  pick n IDs from [1..k] whose\n\
     solitude patterns share the longest prefix, assign them to the ring,\n\
     schedule in global send order: every node must then mimic its\n\
     solitude run for at least the shared-prefix length (the crux of the\n\
     proof), forcing >= n*prefix pulses.";
  let t =
    Table.create
      [
        ("k", Table.Right);
        ("n", Table.Right);
        ("chosen ids", Table.Left);
        ("shared prefix s", Table.Right);
        ("Cor.24 floor", Table.Right);
        ("forced bound n*s", Table.Right);
        ("run sends", Table.Right);
        ("solitude mimicry", Table.Left);
      ]
  in
  let cases =
    if quick then [ (64, 4) ] else [ (16, 2); (64, 4); (256, 8); (1024, 8) ]
  in
  List.iter
    (fun (k, n) ->
      let r = LB.Adversary.replay ~k ~n (fun ~id -> Algo2.program ~id) in
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int n;
          (let shown = Array.to_list (Array.map string_of_int r.ids) in
           if List.length shown <= 6 then String.concat "," shown
           else String.concat "," (List.filteri (fun i _ -> i < 4) shown) ^ ",…");
          Table.cell_int r.shared_prefix;
          Table.cell_int r.formula_prefix;
          Table.cell_int r.bound;
          Table.cell_int r.sends;
          yes_no r.mimicry;
        ])
    cases;
  print_table ~sink ~name:"e6b" t

(* E10: ablations — remove one design ingredient, watch it break. *)
let e10 ~sink ~quick =
  section
    "E10 Ablations  --  each variant removes one ingredient the paper's\n\
     design discussion argues for; failure fraction over instances x\n\
     schedulers (the intact algorithms score 0).";
  let t =
    Table.create
      [
        ("variant", Table.Left);
        ("removed ingredient", Table.Left);
        ("failed runs", Table.Right);
        ("total runs", Table.Right);
        ("failure modes seen", Table.Left);
      ]
  in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let gauntlet factory ~oriented =
    let failures = ref 0 and runs = ref 0 in
    let modes = ref [] in
    List.iter
      (fun seed ->
        let ids = Ids.distinct (Rng.create ~seed) ~n:6 ~id_max:14 in
        let topo =
          if oriented then Topology.oriented 6
          else Topology.random_non_oriented (Rng.create ~seed:(seed + 50)) 6
        in
        List.iter
          (fun sched ->
            incr runs;
            let f = Ablation.observe factory ~topo ~ids ~sched in
            if Ablation.failed f then begin
              incr failures;
              let add m = if not (List.mem m !modes) then modes := m :: !modes in
              if f.wrong_leader then add "wrong/no leader";
              if f.not_quiescent then add "non-quiescent";
              if f.post_term_deliveries > 0 then add "post-term pulses";
              if f.exhausted then add "never stops"
            end)
          (Scheduler.all_deterministic ()
          @ [ Scheduler.random (Rng.create ~seed) ]))
      seeds;
    (!failures, !runs, String.concat ", " (List.rev !modes))
  in
  let row name ingredient factory ~oriented =
    let failures, runs, modes = gauntlet factory ~oriented in
    Table.add_row t
      [
        name;
        ingredient;
        Table.cell_int failures;
        Table.cell_int runs;
        (if modes = "" then "-" else modes);
      ]
  in
  row "algo2 (intact)" "-" (fun ~id -> Algo2.program ~id) ~oriented:true;
  row "algo2-no-lag" "CCW instance lag (Sec. 3.2)"
    (fun ~id -> Ablation.algo2_no_lag ~id)
    ~oriented:true;
  row "algo3 (intact)" "-"
    (fun ~id -> Algo3.program ~scheme:Algo3.Improved ~id)
    ~oriented:false;
  row "algo3-same-ids" "distinct directional maxima (Sec. 4)"
    (fun ~id -> Ablation.algo3_same_virtual_ids ~id)
    ~oriented:false;
  print_table ~sink ~name:"e10" t;
  (* Absorption ablation has a different failure shape: it simply never
     stops. *)
  let f =
    Ablation.observe ~max_deliveries:20_000
      (fun ~id -> Ablation.algo1_no_absorption ~id)
      ~topo:(Topology.oriented 6)
      ~ids:(Ids.dense (Rng.create ~seed:1) ~n:6)
      ~sched:Scheduler.fifo
  in
  Printf.printf
    "algo1-no-absorption (pulse removal at rho = ID removed): exhausted a\n\
     20000-delivery budget without quiescing: %s (Algorithm 1 needs every\n\
     node to delete exactly one pulse for the count to converge).\n"
    (yes_no f.exhausted);
  (* Model necessity: inject one spurious pulse into a healthy run. *)
  let ids = [| 4; 9; 2; 7; 5; 3 |] in
  let net =
    Network.create (Topology.oriented 6) (fun v -> Algo2.program ~id:ids.(v))
  in
  for _ = 1 to 12 do
    ignore (Network.step net Scheduler.fifo)
  done;
  Network.inject net ~node:0 ~port:Port.P1 ();
  let result = Network.run ~max_deliveries:100_000 net Scheduler.fifo in
  let leaders =
    Array.fold_left
      (fun acc (o : Output.t) ->
        if Output.equal_role o.role Output.Leader then acc + 1 else acc)
      0 (Network.outputs net)
  in
  Printf.printf
    "model necessity: injecting ONE spurious pulse mid-run (violating the\n\
     'channels cannot inject' assumption) left the run with %d leader(s),\n\
     quiescent=%s, post-termination pulses=%d — the counting argument is\n\
     destroyed, as the model section predicts.\n"
    leaders
    (yes_no result.quiescent)
    (Metrics.post_termination_deliveries (Network.metrics net))

(* ------------------------------------------------------------------ *)
(* E7: baseline landscape. *)

let e7 ~sink ~jobs ~quick =
  section
    "E7  Related-work landscape (Section 1.2)  --  message counts of the\n\
     classic content-carrying algorithms vs the content-oblivious ones.\n\
     paper positioning: O(n log n) (HS/Peterson) and O(n^2) (CR worst,\n\
     LeLann) with readable contents, vs Theta(n*ID_max) pulses without.";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("chang-roberts", Table.Right);
        ("cr worst", Table.Right);
        ("lelann", Table.Right);
        ("hirschberg-sinclair", Table.Right);
        ("peterson", Table.Right);
        ("franklin", Table.Right);
        ("itai-rodeh", Table.Right);
        ("algo2 IDmax=n", Table.Right);
        ("algo2 IDmax=n^2", Table.Right);
      ]
  in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let ns = if quick then [ 8; 32 ] else [ 4; 8; 16; 32; 64; 128 ] in
  let rows = par_rows ~jobs ns
    (fun n ->
      let avg f =
        let s = Summary.create () in
        List.iter (fun seed -> Summary.add_int s (f seed)) seeds;
        Summary.mean s
      in
      let topo = Topology.oriented n in
      let mk_ids seed = Ids.dense (Rng.create ~seed:(seed + n)) ~n in
      let cr =
        avg (fun seed ->
            let ids = mk_ids seed in
            (Classic.Driver.run ~name:"cr" ~expect_max:ids
               (fun v -> Classic.Chang_roberts.program ~id:ids.(v))
               ~topo ~sched:(sched_of_seed seed))
              .messages)
      in
      let cr_worst =
        let ids = Array.init n (fun v -> n - v) in
        (Classic.Driver.run ~name:"cr" ~expect_max:ids
           (fun v -> Classic.Chang_roberts.program ~id:ids.(v))
           ~topo ~sched:Scheduler.fifo)
          .messages
      in
      let ll =
        let ids = mk_ids 1 in
        (Classic.Driver.run ~name:"ll" ~expect_max:ids
           (fun v -> Classic.Lelann.program ~id:ids.(v))
           ~topo ~sched:(sched_of_seed 1))
          .messages
      in
      let hs =
        avg (fun seed ->
            let ids = mk_ids seed in
            (Classic.Driver.run ~name:"hs" ~expect_max:ids
               (fun v -> Classic.Hirschberg_sinclair.program ~id:ids.(v))
               ~topo ~sched:(sched_of_seed seed))
              .messages)
      in
      let pet =
        avg (fun seed ->
            let ids = mk_ids seed in
            (Classic.Driver.run ~name:"pet" ~expect_max:ids
               (fun v -> Classic.Peterson.program ~id:ids.(v))
               ~topo ~sched:(sched_of_seed seed))
              .messages)
      in
      let franklin =
        avg (fun seed ->
            let ids = mk_ids seed in
            (Classic.Driver.run ~name:"franklin" ~expect_max:ids
               (fun v -> Classic.Franklin.program ~id:ids.(v))
               ~topo ~sched:(sched_of_seed seed))
              .messages)
      in
      let ir =
        avg (fun seed ->
            (Classic.Driver.run ~seed ~name:"ir"
               (fun _ -> Classic.Itai_rodeh.program ~n ~range:8)
               ~topo ~sched:(sched_of_seed (seed + 17)))
              .messages)
      in
      let a2_dense = Formulas.algo2_total ~n ~id_max:n in
      let a2_sparse = Formulas.algo2_total ~n ~id_max:(n * n) in
      ( [
          Table.cell_int n;
          Table.cell_float ~decimals:0 cr;
          Table.cell_int cr_worst;
          Table.cell_int ll;
          Table.cell_float ~decimals:0 hs;
          Table.cell_float ~decimals:0 pet;
          Table.cell_float ~decimals:0 franklin;
          Table.cell_float ~decimals:0 ir;
          Table.cell_int a2_dense;
          Table.cell_int a2_sparse;
        ],
        ( (float_of_int n, cr),
          (float_of_int n, hs),
          (float_of_int n, float_of_int a2_dense) ) ))
  in
  List.iter (fun (cells, _) -> Table.add_row t cells) rows;
  print_table ~sink ~name:"e7" t;
  if not quick then begin
    let pts = List.map snd rows in
    Printf.printf
      "log-log slopes in n:  chang-roberts avg %.2f  (expected ~1.5 to 2 on\n\
       random inputs is ~n log n => ~1.2; worst 2),  hirschberg-sinclair %.2f\n\
       (~1.2 = n log n),  algo2 dense %.2f (= 2, quadratic because\n\
       ID_max >= n makes n*ID_max at least n^2)\n"
      (Fit.loglog_slope (List.map (fun (p, _, _) -> p) pts))
      (Fit.loglog_slope (List.map (fun (_, p, _) -> p) pts))
      (Fit.loglog_slope (List.map (fun (_, _, p) -> p) pts))
  end

(* ------------------------------------------------------------------ *)
(* E8: Corollary 5 composition. *)

let e8 ~sink ~quick =
  section
    "E8  Corollary 5 (composition)  --  paper: with the elected leader as\n\
     root, any asynchronous ring algorithm can be simulated on the fully\n\
     defective ring.  Costs below: election is the Theorem 1 closed form;\n\
     each tape symbol costs n pulses, each turn-baton 1.";
  let t =
    Table.create
      [
        ("app", Table.Left);
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("election", Table.Right);
        ("compose", Table.Right);
        ("total", Table.Right);
        ("cost model", Table.Left);
        ("correct", Table.Left);
        ("quiescent term.", Table.Left);
      ]
  in
  let ns = if quick then [ 2; 6 ] else [ 2; 4; 8; 12; 16 ] in
  let run_app ~label ~mk_app ~check ?predict n =
    let rng = Rng.create ~seed:(n + 1000) in
    let ids = Ids.distinct rng ~n ~id_max:(2 * n) in
    let net =
      Network.create (Topology.oriented n) (fun v ->
          Compose.Corollary5.program ~id:ids.(v) ~app:(mk_app ids v))
    in
    let result = Network.run ~max_deliveries:50_000_000 net (Scheduler.random (Rng.split rng)) in
    let outputs = Network.outputs net in
    let id_max = Ids.id_max ids in
    let election = Formulas.algo2_total ~n ~id_max in
    Table.add_row t
      [
        label;
        Table.cell_int n;
        Table.cell_int id_max;
        Table.cell_int election;
        Table.cell_int (result.sends - election);
        Table.cell_int result.sends;
        (match predict with
        | Some f ->
            let p = f ids in
            if p = result.sends then Printf.sprintf "%d =" p
            else Printf.sprintf "%d MISMATCH" p
        | None -> "-");
        yes_no (check ids outputs);
        yes_no
          (result.quiescent && result.all_terminated
          && Metrics.post_termination_deliveries (Network.metrics net) = 0);
      ]
  in
  let ids_by_distance ids =
    let n = Array.length ids in
    let leader = Ids.argmax ids in
    Array.init n (fun d -> ids.((leader + d) mod n))
  in
  List.iter
    (fun n ->
      run_app ~label:"ring discovery"
        ~mk_app:(fun _ _ -> Compose.Corollary5.app_ring_discovery)
        ~check:(fun _ outputs ->
          Array.for_all (fun (o : Output.t) -> o.value = Some n) outputs)
        ~predict:(fun ids ->
          Compose.Costs.ring_discovery_total ~n ~id_max:(Ids.id_max ids))
        n;
      run_app ~label:"gather ids"
        ~mk_app:(fun ids v -> Compose.Corollary5.app_gather_ids ~my_id:ids.(v))
        ~check:(fun ids outputs ->
          let id_max = Ids.id_max ids in
          Array.for_all (fun (o : Output.t) -> o.value = Some id_max) outputs)
        ~predict:(fun ids ->
          Compose.Costs.gather_ids_total
            ~ids_by_distance:(ids_by_distance ids)
            ~id_max:(Ids.id_max ids))
        n;
      run_app ~label:"sync chang-roberts"
        ~mk_app:(fun ids v ->
          Compose.Corollary5.app_sync_chang_roberts ~my_id:ids.(v))
        ~check:(fun ids outputs ->
          let id_max = Ids.id_max ids in
          Array.for_all (fun (o : Output.t) -> o.value = Some id_max) outputs)
        n;
      run_app ~label:"sync ring-sum"
        ~mk_app:(fun ids v -> Compose.Corollary5.app_sync_sum ~my_value:ids.(v))
        ~check:(fun ids outputs ->
          let total = Array.fold_left ( + ) 0 ids in
          Array.for_all (fun (o : Output.t) -> o.value = Some total) outputs)
        n;
      Table.add_rule t)
    ns;
  print_table ~sink ~name:"e8" t;
  (* Detailed per-app cost for one size, including the tape split. *)
  let n = if quick then 6 else 12 in
  let ids = Ids.distinct (Rng.create ~seed:5) ~n ~id_max:(2 * n) in
  let r =
    Compose.Corollary5.run ~app:Compose.Corollary5.app_ring_discovery ~ids
      Scheduler.fifo
  in
  Printf.printf
    "ring discovery at n=%d: total=%d = election %d + compose %d;\n\
     tape symbols (seen at root) %d; compose = symbols*n + n batons: %s\n"
    n r.total_pulses r.election_pulses r.compose_pulses r.tape_symbols
    (yes_no (r.compose_pulses = (r.tape_symbols * n) + n))

(* E11: bounded model checking — all schedules, not just sampled ones. *)
let e11 ~sink ~quick =
  section
    "E11 Exhaustive schedule exploration  --  the adversary tree of small\n\
     instances is walked completely (with state de-duplication); Theorem 1\n\
     must hold at EVERY reachable terminal state, and in fact all\n\
     schedules collapse to a single final state.";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ids", Table.Left);
        ("distinct states", Table.Right);
        ("terminal states", Table.Right);
        ("max depth", Table.Right);
        ("property failures", Table.Right);
        ("complete", Table.Left);
      ]
  in
  let check ids net =
    let n = Array.length ids in
    Network.is_quiescent net && Network.all_terminated net
    && Metrics.sends (Network.metrics net)
       = Formulas.algo2_total ~n ~id_max:(Ids.id_max ids)
    && Metrics.post_termination_deliveries (Network.metrics net) = 0
    &&
    let max_pos = Ids.argmax ids in
    Array.for_all
      (fun v ->
        Output.equal_role (Network.output net v).Output.role
          (if v = max_pos then Output.Leader else Output.Non_leader))
      (Array.init n Fun.id)
  in
  let cases =
    if quick then [ [| 1; 2 |]; [| 2; 3; 1 |] ]
    else
      [
        [| 1; 2 |];
        [| 4; 2 |];
        [| 2; 3; 1 |];
        [| 5; 1; 3 |];
        [| 2; 4; 1; 3 |];
        [| 3; 5; 2; 4 |];
        [| 2; 4; 1; 3; 5 |];
      ]
  in
  List.iter
    (fun ids ->
      let n = Array.length ids in
      let stats =
        Explore.exhaustive ~max_states:2_000_000
          ~make:(fun () ->
            Network.create (Topology.oriented n) (fun v ->
                Algo2.program ~id:ids.(v)))
          ~check:(check ids) ()
      in
      Table.add_row t
        [
          Table.cell_int n;
          String.concat ","
            (Array.to_list (Array.map string_of_int ids));
          Table.cell_int stats.Explore.distinct_states;
          Table.cell_int stats.Explore.terminal_states;
          Table.cell_int stats.Explore.max_depth;
          Table.cell_int stats.Explore.failures;
          yes_no (not stats.Explore.truncated);
        ])
    cases;
  print_table ~sink ~name:"e11_algo2" t;
  Printf.printf
    "A single terminal state means every legal asynchronous schedule ends\n\
     in literally the same global configuration.\n\n";
  (* Algorithm 3: every flip pattern x every schedule. *)
  let t2 =
    Table.create
      ~title:
        "Algorithm 3 (improved), exhaustively: all 2^n port-flip patterns x\n\
         all schedules; every quiescent state must have the max-ID leader, a\n\
         consistent orientation and exactly n(2*ID_max+1) pulses."
      [
        ("n", Table.Right);
        ("ids", Table.Left);
        ("flip patterns", Table.Right);
        ("distinct states (total)", Table.Right);
        ("failures", Table.Right);
        ("complete", Table.Left);
      ]
  in
  let check3 ids topo net =
    let n = Array.length ids in
    Network.is_quiescent net
    && Metrics.sends (Network.metrics net)
       = Formulas.algo3_improved_total ~n ~id_max:(Ids.id_max ids)
    && Election.orientation_consistent topo (Network.outputs net)
    &&
    let max_pos = Ids.argmax ids in
    Array.for_all
      (fun v ->
        Output.equal_role (Network.output net v).Output.role
          (if v = max_pos then Output.Leader else Output.Non_leader))
      (Array.init n Fun.id)
  in
  let cases3 = if quick then [ [| 2; 1 |] ] else [ [| 2; 1 |]; [| 2; 3; 1 |]; [| 1; 4; 2 |] ] in
  List.iter
    (fun ids ->
      let n = Array.length ids in
      let states = ref 0 and failures = ref 0 and complete = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let flips = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
        let topo = Topology.non_oriented ~flips in
        let stats =
          Explore.exhaustive ~max_states:2_000_000
            ~make:(fun () ->
              Network.create topo (fun v ->
                  Algo3.program ~scheme:Algo3.Improved ~id:ids.(v)))
            ~check:(check3 ids topo) ()
        in
        states := !states + stats.Explore.distinct_states;
        failures := !failures + stats.Explore.failures;
        if stats.Explore.truncated then complete := false
      done;
      Table.add_row t2
        [
          Table.cell_int n;
          String.concat "," (Array.to_list (Array.map string_of_int ids));
          Table.cell_int (1 lsl n);
          Table.cell_int !states;
          Table.cell_int !failures;
          yes_no !complete;
        ])
    cases3;
  print_table ~sink ~name:"e11_algo3" t2

(* E12: scale — the analytical simulator runs the dynamics exactly at
   ID magnitudes far beyond event-level simulation. *)
let e12 ~sink ~jobs ~quick =
  section
    "E12 Scale (fast analytical simulator)  --  the same dynamics, driven\n\
     pulse-by-pulse with closed-form lap arithmetic (O(n^2), exact).  The\n\
     ID_max term of Theorems 1/2 is verified at magnitudes where the\n\
     event engine would need 10^12 deliveries.  The fast simulator is\n\
     differentially tested against the engine at small scales.";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("algo1 measured", Table.Right);
        ("= n*IDmax", Table.Left);
        ("algo2 measured", Table.Right);
        ("= n(2IDmax+1)", Table.Left);
        ("algo3-impr measured", Table.Right);
        ("= n(2IDmax+1)", Table.Left);
      ]
  in
  let cases =
    if quick then [ (16, 1_000_000); (64, 1_000_000_000) ]
    else
      [
        (16, 1_000_000);
        (256, 1_000_000);
        (2048, 1_000_000);
        (16, 1_000_000_000);
        (256, 1_000_000_000);
        (2048, 1_000_000_000);
        (4096, 100_000_000);
        (2, 1_000_000_000_000);
      ]
  in
  par_rows ~jobs cases (fun (n, id_max) ->
      let rng = Rng.create ~seed:(n + 13) in
      let ids = Ids.distinct rng ~n ~id_max in
      let flips = Array.init n (fun _ -> Rng.bool rng) in
      let a1 = Colring_fastsim.Fast.algo1 ~ids in
      let a2 = Colring_fastsim.Fast.algo2 ~ids in
      let a3 =
        Colring_fastsim.Fast.algo3 ~scheme:Algo3.Improved ~ids ~flips
      in
      [
        Table.cell_int n;
        Table.cell_int id_max;
        Table.cell_int a1.total;
        yes_no (a1.total = Formulas.algo1_total ~n ~id_max);
        Table.cell_int a2.total;
        yes_no (a2.total = Formulas.algo2_total ~n ~id_max);
        Table.cell_int a3.total;
        yes_no
          (a3.total = Formulas.algo3_improved_total ~n ~id_max
          && a3.leader_unique && a3.orientation_consistent);
      ])
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e12" t

(* E13: asynchronous time (causal span) — a dimension the paper leaves
   implicit. *)
let e13 ~sink ~jobs ~quick =
  section
    "E13 Asynchronous time (causal span)  --  longest chain of causally\n\
     dependent deliveries, each message = one time unit.  Not a paper\n\
     claim: reported to show obliviousness costs time as well as\n\
     messages (the pulses are serialized by the counting argument),\n\
     while the classic algorithms finish in O(n)-ish spans.";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ID_max", Table.Right);
        ("algo1 span", Table.Right);
        ("algo2 span", Table.Right);
        ("algo3-impr span", Table.Right);
        ("lelann span", Table.Right);
        ("chang-roberts span", Table.Right);
        ("hs span", Table.Right);
        ("algo2 msgs (ref)", Table.Right);
      ]
  in
  let ns = if quick then [ 8; 32 ] else [ 4; 8; 16; 32; 64 ] in
  par_rows ~jobs ns
    (fun n ->
      let rng = Rng.create ~seed:(n + 77) in
      let ids = Ids.distinct rng ~n ~id_max:(2 * n) in
      let id_max = Ids.id_max ids in
      let topo = Topology.oriented n in
      let span_of algorithm =
        (Election.run_report algorithm ~topo ~ids ~sched:(sched_of_seed n))
          .causal_span
      in
      let a1 = span_of Election.Algo1 in
      let a2 = span_of Election.Algo2 in
      let a3 =
        (Election.run_report (Election.Algo3 Algo3.Improved)
           ~topo:(Topology.random_non_oriented rng n) ~ids
           ~sched:(sched_of_seed (n + 1)))
          .causal_span
      in
      let classic name mk =
        (Classic.Driver.run ~name ~expect_max:ids mk ~topo
           ~sched:(sched_of_seed (n + 2)))
          .causal_span
      in
      let ll = classic "ll" (fun v -> Classic.Lelann.program ~id:ids.(v)) in
      let cr =
        classic "cr" (fun v -> Classic.Chang_roberts.program ~id:ids.(v))
      in
      let hs =
        classic "hs" (fun v -> Classic.Hirschberg_sinclair.program ~id:ids.(v))
      in
      [
        Table.cell_int n;
        Table.cell_int id_max;
        Table.cell_int a1;
        Table.cell_int a2;
        Table.cell_int a3;
        Table.cell_int ll;
        Table.cell_int cr;
        Table.cell_int hs;
        Table.cell_int (Formulas.algo2_total ~n ~id_max);
      ])
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e13" t;
  Printf.printf
    "The content-oblivious spans grow with ID_max (here ID_max = 2n, so\n\
     ~linearly in n on this table); the classic spans stay near 2n.\n"

(* E14: general graphs — the paper's closing open question, explored. *)
let e14 ~sink ~jobs ~quick =
  section
    "E14 General 2-edge-connected graphs (Section 7's open question) --\n\
     exploratory, no claim in the paper and none here.  First the ring\n\
     algorithms are cross-validated on the independent multi-port graph\n\
     simulator; then a naive generalization ('rotor': forward on the\n\
     next port, absorb every ID-th pulse) is observed on non-ring\n\
     2-edge-connected graphs: it usually reaches quiescence but does\n\
     NOT elect the max-ID node — new ideas are indeed needed.";
  (* Cross-validation row. *)
  let ids = Ids.distinct (Rng.create ~seed:3) ~n:8 ~id_max:20 in
  let g = Colring_graph.Gtopology.ring 8 in
  let gnet =
    Colring_graph.Gnetwork.create g (fun v ->
        Colring_graph.Circulate.algo3_deg2 ~scheme:Algo3.Improved ~id:ids.(v))
  in
  let gres = Colring_graph.Gnetwork.run gnet (sched_of_seed 4) in
  Printf.printf
    "cross-validation: Algorithm 3 on the ring-as-graph: %d pulses\n\
     (ring engine formula n(2*ID_max+1) = %d), quiescent: %s\n\n"
    gres.Colring_graph.Gnetwork.sends
    (Formulas.algo3_improved_total ~n:8 ~id_max:20)
    (yes_no gres.Colring_graph.Gnetwork.quiescent);
  let t =
    Table.create
      [
        ("graph", Table.Left);
        ("n", Table.Right);
        ("deg", Table.Left);
        ("2-edge-conn", Table.Left);
        ("runs", Table.Right);
        ("quiesced", Table.Right);
        ("exhausted", Table.Right);
        ("unique max leader", Table.Right);
        ("mean pulses (quiesced)", Table.Right);
      ]
  in
  let seeds = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let graphs =
    [
      ("ring(8)", Colring_graph.Gtopology.ring 8);
      ("theta(1,2,3)", Colring_graph.Gtopology.theta 1 2 3);
      ("theta(0,3,3)", Colring_graph.Gtopology.theta 0 3 3);
      ("K4", Colring_graph.Gtopology.complete 4);
      ("K6", Colring_graph.Gtopology.complete 6);
      ( "cycle8+2chords",
        Colring_graph.Gtopology.cycle_with_chords (Rng.create ~seed:9) ~n:8
          ~chords:2 );
    ]
  in
  par_rows ~jobs graphs
    (fun (name, g) ->
      let n = Colring_graph.Gtopology.n g in
      let quiesced = ref 0 and exhausted = ref 0 and elected = ref 0 in
      let pulses = Summary.create () in
      List.iter
        (fun seed ->
          let ids = Ids.distinct (Rng.create ~seed) ~n ~id_max:(3 * n) in
          let net =
            Colring_graph.Gnetwork.create g (fun v ->
                Colring_graph.Circulate.rotor ~id:ids.(v))
          in
          let r =
            Colring_graph.Gnetwork.run ~max_deliveries:200_000 net
              (sched_of_seed (seed + 31))
          in
          if r.Colring_graph.Gnetwork.quiescent then begin
            incr quiesced;
            Summary.add_int pulses r.Colring_graph.Gnetwork.sends;
            let outs = Colring_graph.Gnetwork.outputs net in
            let leaders =
              Array.fold_left
                (fun acc (o : Output.t) ->
                  if Output.equal_role o.role Output.Leader then acc + 1
                  else acc)
                0 outs
            in
            if
              leaders = 1
              && Output.equal_role outs.(Ids.argmax ids).Output.role
                   Output.Leader
            then incr elected
          end
          else incr exhausted)
        seeds;
      let degs =
        List.sort_uniq compare
          (List.init n (fun v -> Colring_graph.Gtopology.degree g v))
      in
      [
        name;
        Table.cell_int n;
        String.concat "/" (List.map string_of_int degs);
        yes_no (Colring_graph.Gtopology.is_two_edge_connected g);
        Table.cell_int (List.length seeds);
        Table.cell_int !quiesced;
        Table.cell_int !exhausted;
        Table.cell_int !elected;
        (if Summary.count pulses = 0 then "-"
         else Table.cell_float ~decimals:0 (Summary.mean pulses));
      ])
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e14" t

(* E15: model checker throughput — lib/mc explores the POR-reduced
   schedule space exhaustively (DESIGN.md section 9).  Not a paper
   claim: reported so regressions in the replay-from-prefix engine are
   visible, and as a standing cross-check that the paper algorithms
   verify while every ablation yields a counterexample.  Rows run
   sequentially; the checker itself fans its root branches out on the
   domain pool, so -j N parallelizes *inside* each row (the time and
   states/s columns are wall-clock and vary run to run; every other
   column is deterministic and jobs-independent). *)
let e15 ~sink ~jobs ~quick =
  section
    "E15 Model checker (lib/mc)  --  exhaustive schedule-space exploration\n\
     with incremental undo, sleep-set/source-set POR, state caching and\n\
     (for anon:relay) rotation symmetry; states/sec is wall-clock.\n\
     'as expected' = verified for the paper algorithms and baselines,\n\
     counterexample found for every ablation.";
  let t =
    Table.create
      [
        ("target", Table.Left);
        ("n", Table.Right);
        ("states", Table.Right);
        ("terminal scheds", Table.Right);
        ("sleep pruned", Table.Right);
        ("dedup pruned", Table.Right);
        ("replayed", Table.Right);
        ("undone", Table.Right);
        ("time (s)", Table.Right);
        ("states/s", Table.Right);
        ("as expected", Table.Left);
      ]
  in
  let row n target =
    let ids = Ids.distinct (Rng.create ~seed:1) ~n ~id_max:n in
    let (Colring_mc.Spec.Packed spec) =
      Colring_mc.Spec.of_target target ~ids ~topo_seed:2
    in
    let t0 = Unix.gettimeofday () in
    let r = Colring_mc.Mc.check ~jobs spec in
    let dt = Unix.gettimeofday () -. t0 in
    let s = r.Colring_mc.Mc.stats in
    let ok =
      if spec.Colring_mc.Mc.expect_violation then
        r.Colring_mc.Mc.counterexample <> None
      else r.Colring_mc.Mc.counterexample = None && not s.Colring_mc.Mc.truncated
    in
    Table.add_row t
      [
        target;
        Table.cell_int n;
        Table.cell_int s.Colring_mc.Mc.states;
        Table.cell_int s.Colring_mc.Mc.schedules;
        Table.cell_int s.Colring_mc.Mc.sleep_pruned;
        Table.cell_int s.Colring_mc.Mc.dedup_pruned;
        Table.cell_int s.Colring_mc.Mc.replayed_deliveries;
        Table.cell_int s.Colring_mc.Mc.undone_deliveries;
        Table.cell_float ~decimals:3 dt;
        Table.cell_float ~decimals:0
          (float_of_int s.Colring_mc.Mc.states /. Float.max dt 1e-6);
        yes_no ok;
      ]
  in
  let targets =
    [
      "algo1";
      "algo2";
      "algo3-doubled";
      "algo3-improved";
      "franklin";
      "anon:relay";
      "ablation:no-lag";
      "ablation:same-virtual-ids";
      "ablation:no-absorption";
    ]
  in
  let ns = if quick then [ 3 ] else [ 3; 4 ] in
  List.iter (fun n -> List.iter (row n) targets) ns;
  (* The scale rows: exhaustive verification at n=5 for the paper
     algorithms and a baseline, and n=6 for the cheap ones — the
     sizes the incremental-undo + POR + symmetry scale-up unlocked. *)
  if not quick then begin
    List.iter (row 5)
      [ "algo1"; "algo2"; "algo3-improved"; "chang-roberts"; "anon:relay" ];
    List.iter (row 6) [ "algo1"; "algo2"; "anon:relay" ]
  end;
  print_table ~sink ~name:"e15" t

(* ------------------------------------------------------------------ *)
(* E16: transport backends — elections/sec and wall-clock latency
   percentiles per backend, fault-free and under jitter.  Ordering is
   load-bearing twice over: Unix.fork is forbidden for the rest of the
   process once any domain has been spawned (OCaml 5), so bench/main.ml
   runs E16 before every pool-using experiment, and within the table
   the forking socket rows run before the domains rows. *)

module Backend = Colring_transport.Backend

let e16 ~sink ~quick =
  section
    "E16 Transport backends  --  elections/sec and per-election wall-clock\n\
     latency per backend (sim / domains / socket), fault-free and under\n\
     deterministic latency+jitter injection.  'verified' counts runs whose\n\
     recorded schedule replayed byte-identically on the simulator.";
  let n = 8 in
  let trials = if quick then 8 else 32 in
  let topo = Topology.oriented n in
  let t =
    Table.create
      [
        ("backend", Table.Left);
        ("faults", Table.Left);
        ("trials", Table.Right);
        ("elections/s", Table.Right);
        ("p50 ms", Table.Right);
        ("p99 ms", Table.Right);
        ("verified", Table.Right);
        ("ok", Table.Right);
      ]
  in
  let row backend (fault_label, faults) =
    let times = Array.make trials 0.0 in
    let verified = ref 0 and elected = ref 0 in
    for i = 0 to trials - 1 do
      let ids = Ids.dense (Rng.create ~seed:(50 + i)) ~n in
      let t0 = Unix.gettimeofday () in
      let r = Backend.elect ~seed:i ~faults backend Election.Algo2 ~topo ~ids in
      times.(i) <- Unix.gettimeofday () -. t0;
      if r.Backend.verified then incr verified;
      if Election.ok r.Backend.report then incr elected
    done;
    let total = Array.fold_left ( +. ) 0.0 times in
    Array.sort Float.compare times;
    let pct p =
      times.(min (trials - 1) (int_of_float (p *. float_of_int trials)))
    in
    Table.add_row t
      [
        Backend.name backend;
        fault_label;
        Table.cell_int trials;
        Table.cell_float ~decimals:0 (float_of_int trials /. total);
        Table.cell_float ~decimals:3 (pct 0.50 *. 1e3);
        Table.cell_float ~decimals:3 (pct 0.99 *. 1e3);
        Table.cell_int !verified;
        Table.cell_int !elected;
      ]
  in
  let fault_cases =
    [
      ("none", Transport.no_fault);
      ( "lat=100us jit=300us",
        Transport.faults ~seed:7 ~latency:100 ~jitter:300 () );
    ]
  in
  (* Socket rows first (they fork), then the domain-spawning rows. *)
  List.iter
    (fun b -> List.iter (row b) fault_cases)
    [
      Backend.Socket { tcp = false };
      Backend.Socket { tcp = true };
      Backend.Sim;
      Backend.Domains;
    ];
  print_table ~sink ~name:"e16" t

(* ------------------------------------------------------------------ *)
(* E18: walk election by topology family — the general 2-edge-connected
   election (lib/graph Gelection, DESIGN.md section 12) measured per
   --topology family.  Pulse complexity is exactly walk * ID_max; the
   'overhead' column is walk/n, the factor the spanning-walk
   construction pays over Algorithm 1 on a ring of the same size
   (where the walk IS the ring, factor 1.00).  elections/s is
   wall-clock and varies run to run; every other column is
   deterministic and jobs-independent. *)

module Topo = Colring_harness.Topo
module Gelection = Colring_graph.Gelection

let e18_families =
  [
    Topo.Ring (Some 8);
    Topo.Theta 8;
    Topo.K4;
    Topo.Bowtie;
    Topo.Random2ec { n = 12; seed = 5 };
  ]

let e18 ~sink ~jobs ~quick =
  section
    "E18 Walk election on 2-edge-connected graphs  --  Gelection per\n\
     topology family (DESIGN.md section 12).  Pulse complexity is\n\
     walk*ID_max exactly; 'overhead' = walk/n, the spanning-walk cost\n\
     over Algorithm 1 on a same-size ring.  elections/s is wall-clock.";
  let t =
    Table.create
      [
        ("topology", Table.Left);
        ("n", Table.Right);
        ("walk", Table.Right);
        ("ears", Table.Right);
        ("overhead", Table.Right);
        ("runs", Table.Right);
        ("ok", Table.Right);
        ("sends=walk*IDmax", Table.Left);
        ("mean sends", Table.Right);
        ("elections/s", Table.Right);
      ]
  in
  let seeds =
    if quick then [ 1; 2; 3 ] else List.init 20 (fun i -> i + 1)
  in
  par_rows ~jobs e18_families
    (fun spec ->
      let g = Topo.materialize ~default_n:8 spec in
      let n = Colring_graph.Gtopology.n g in
      let plan = Gelection.plan g in
      let walk = Gelection.walk_length plan in
      let ears =
        List.length (Colring_graph.Ears.ears (Gelection.decomposition plan))
      in
      let ok = ref 0 and exact = ref 0 in
      let sends = Summary.create () in
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun seed ->
          let ids =
            Ids.distinct (Rng.create ~seed:(seed * 11 + 1)) ~n ~id_max:(2 * n)
          in
          let r =
            Gelection.run_report plan ~ids ~sched:(sched_of_seed (seed + 97))
          in
          if Gelection.ok r then incr ok;
          if r.Gelection.sends = r.Gelection.expected_sends then incr exact;
          Summary.add_int sends r.Gelection.sends)
        seeds;
      let wall = Unix.gettimeofday () -. t0 in
      let runs = List.length seeds in
      [
        Topo.to_string spec;
        Table.cell_int n;
        Table.cell_int walk;
        Table.cell_int ears;
        Table.cell_ratio (float_of_int walk /. float_of_int n);
        Table.cell_int runs;
        Table.cell_int !ok;
        yes_no (!exact = runs);
        Table.cell_float ~decimals:1 (Summary.mean sends);
        Table.cell_float ~decimals:0
          (float_of_int runs /. Float.max wall 1e-9);
      ])
  |> List.iter (Table.add_row t);
  print_table ~sink ~name:"e18" t

let all ~sink ~jobs ~quick =
  e16 ~sink ~quick;
  e1 ~sink ~jobs ~quick;
  e1_dup ~sink ~jobs ~quick;
  e2 ~sink ~jobs ~quick;
  e3_e4 ~sink ~jobs ~quick;
  e5 ~sink ~jobs ~quick;
  e6 ~sink ~quick;
  e6b ~sink ~quick;
  e7 ~sink ~jobs ~quick;
  e8 ~sink ~quick;
  e9 ~sink ~jobs ~quick;
  e10 ~sink ~quick;
  e11 ~sink ~quick;
  e12 ~sink ~jobs ~quick;
  e13 ~sink ~jobs ~quick;
  e14 ~sink ~jobs ~quick;
  e15 ~sink ~jobs ~quick;
  e18 ~sink ~jobs ~quick
