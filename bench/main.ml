(* Bench entry point.

   Usage:
     dune exec bench/main.exe                -- all experiments + timings
     dune exec bench/main.exe -- quick       -- reduced sweeps
     dune exec bench/main.exe -- e2 e6       -- selected experiments
     dune exec bench/main.exe -- timing      -- bechamel + engine throughput
     dune exec bench/main.exe -- throughput  -- engine throughput only;
                                                writes BENCH_engine.json *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let selected = List.filter (fun a -> a <> "quick") args in
  let want name = selected = [] || List.mem name selected in
  Printf.printf
    "colring bench — Content-Oblivious Leader Election on Rings\n\
     (Frei, Gelles, Ghazy, Nolin; DISC 2024)\n\
     mode: %s\n"
    (if quick then "quick" else "full");
  if want "e1" then (Experiments.e1 ~quick; Experiments.e1_dup ~quick);
  if want "e2" then Experiments.e2 ~quick;
  if want "e3" || want "e4" then Experiments.e3_e4 ~quick;
  if want "e5" then Experiments.e5 ~quick;
  if want "e6" then (Experiments.e6 ~quick; Experiments.e6b ~quick);
  if want "e7" then Experiments.e7 ~quick;
  if want "e8" then Experiments.e8 ~quick;
  if want "e9" then Experiments.e9 ~quick;
  if want "e10" then Experiments.e10 ~quick;
  if want "e11" then Experiments.e11 ~quick;
  if want "e12" then Experiments.e12 ~quick;
  if want "e13" then Experiments.e13 ~quick;
  if want "e14" then Experiments.e14 ~quick;
  if want "timing" then Timing.run ()
  else if want "throughput" then Timing.throughput ~quick ()
