(* Bench entry point.

   Usage:
     dune exec bench/main.exe                -- all experiments + timings
     dune exec bench/main.exe -- quick       -- reduced sweeps
     dune exec bench/main.exe -- e2 e6       -- selected experiments
     dune exec bench/main.exe -- timing      -- bechamel + engine throughput
     dune exec bench/main.exe -- throughput  -- engine throughput only;
                                                writes BENCH_engine.json
     dune exec bench/main.exe -- -j 4 e2     -- sweep tables on 4 domains
     dune exec bench/main.exe -- --journal bench.jsonl e2
                                             -- also journal every table row

   The experiment tables run their independent rows/trials on the
   lib/runtime domain pool; -j N (or COLRING_JOBS) picks the domain
   count.  Tables are bit-identical for every N, and so is the
   --journal file: rows are appended (and journaled) in case order
   after each parallel batch drains. *)

module Sink = Colring_engine.Sink
module Cli = Colring_harness.Cli

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec extract_opts acc jobs journal = function
    | [] -> (jobs, journal, List.rev acc)
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j ->
            let j = Cli.exit_or ~cmd:"bench" (Cli.positive ~flag:"-j" j) in
            extract_opts acc (Some j) journal rest
        | None ->
            prerr_endline ("bench: -j " ^ v ^ ": expected an integer");
            exit 2)
    | ("-j" | "--jobs") :: [] ->
        prerr_endline "bench: -j expects a value";
        exit 2
    | "--journal" :: path :: rest -> extract_opts acc jobs (Some path) rest
    | "--journal" :: [] ->
        prerr_endline "bench: --journal expects a file";
        exit 2
    | x :: rest -> extract_opts (x :: acc) jobs journal rest
  in
  let jobs_opt, journal, args = extract_opts [] None None args in
  let jobs = Cli.exit_or ~cmd:"bench" (Cli.jobs ~flag:"-j" jobs_opt) in
  let quick = List.mem "quick" args in
  let selected = List.filter (fun a -> a <> "quick") args in
  let want name = selected = [] || List.mem name selected in
  Printf.printf
    "colring bench — Content-Oblivious Leader Election on Rings\n\
     (Frei, Gelles, Ghazy, Nolin; DISC 2024)\n\
     mode: %s, domains: %d\n"
    (if quick then "quick" else "full")
    jobs;
  let run_selected sink =
    (* E16 first: its socket backend forks, and Unix.fork is forbidden
       once any pool-using experiment below has spawned a domain. *)
    if want "e16" then Experiments.e16 ~sink ~quick;
    if want "e1" then (Experiments.e1 ~sink ~jobs ~quick; Experiments.e1_dup ~sink ~jobs ~quick);
    if want "e2" then Experiments.e2 ~sink ~jobs ~quick;
    if want "e3" || want "e4" then Experiments.e3_e4 ~sink ~jobs ~quick;
    if want "e5" then Experiments.e5 ~sink ~jobs ~quick;
    if want "e6" then (Experiments.e6 ~sink ~quick; Experiments.e6b ~sink ~quick);
    if want "e7" then Experiments.e7 ~sink ~jobs ~quick;
    if want "e8" then Experiments.e8 ~sink ~quick;
    if want "e9" then Experiments.e9 ~sink ~jobs ~quick;
    if want "e10" then Experiments.e10 ~sink ~quick;
    if want "e11" then Experiments.e11 ~sink ~quick;
    if want "e12" then Experiments.e12 ~sink ~jobs ~quick;
    if want "e13" then Experiments.e13 ~sink ~jobs ~quick;
    if want "e14" then Experiments.e14 ~sink ~jobs ~quick;
    if want "e15" then Experiments.e15 ~sink ~jobs ~quick;
    if want "e18" then Experiments.e18 ~sink ~jobs ~quick;
    if want "timing" then Timing.run ()
    else if want "throughput" then Timing.throughput ~quick ()
  in
  (* The journal sink flushes on ALL exits (valid prefix even when an
     experiment raises); without a journal it is the null sink. *)
  match journal with
  | None -> run_selected Sink.null
  | Some path -> Sink.with_jsonl_channel path run_selected
