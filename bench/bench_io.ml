(* A minimal JSON writer for bench reports — just enough to emit
   BENCH_engine.json without adding a JSON dependency. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          emit buf (indent + 2) x)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc
