(* A minimal JSON writer for bench reports — just enough to emit
   BENCH_engine.json without adding a JSON dependency. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          emit buf (indent + 2) x)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* {2 Reading}

   A parser for the subset this writer emits, so the bench can read a
   report back and validate its shape (and tests can round-trip) —
   still without a JSON dependency. *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'u' ->
              (* Decode to a raw byte when it fits, as [escape] only
                 emits \u for control characters. *)
              if !pos + 4 >= len then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else fail "non-latin \\u escape unsupported";
              pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad int"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  of_string contents

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function Int i -> Some i | _ -> None
let get_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let get_list = function List xs -> Some xs | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None

(* {2 Journal lines}

   Shape validation for the JSONL run journals the Sink layer writes
   ([--journal FILE]).  One function per line keeps the schema
   knowledge next to the parser, where the round-trip tests and the
   [colring journal] validator both find it. *)

let check_journal_line json =
  let has_int k = match member k json with Some (Int _) -> true | _ -> false in
  let has_str k =
    match member k json with Some (String _) -> true | _ -> false
  in
  let has_bool k =
    match member k json with Some (Bool _) -> true | _ -> false
  in
  let require typ cond =
    if cond then Ok typ
    else Error (Printf.sprintf "%s record is missing required fields" typ)
  in
  match json with
  | Obj _ -> (
      match member "type" json with
      | Some (String typ) -> (
          match typ with
          | "send" ->
              require typ
                (has_int "node" && has_int "port" && has_int "seq"
                && has_int "link" && has_bool "cw")
          | "deliver" | "drop" ->
              require typ (has_int "node" && has_int "port" && has_int "seq")
          | "consume" -> require typ (has_int "node" && has_int "port")
          | "wake" | "terminate" -> require typ (has_int "node")
          | "decide" -> require typ (has_int "node" && has_str "role")
          | "run_start" ->
              require typ
                (has_str "algorithm" && has_int "n" && has_int "seed"
                && has_str "workload")
          | "snapshot" ->
              require typ
                (has_int "step"
                &&
                match member "counters" json with
                | Some (Obj fields) ->
                    fields <> []
                    && List.for_all
                         (fun (_, v) ->
                           match v with Int _ -> true | _ -> false)
                         fields
                | _ -> false)
          | "run_end" -> require typ (has_str "algorithm" && has_int "deliveries")
          | "row" ->
              require typ
                (has_str "table"
                && match member "fields" json with Some (Obj _) -> true | _ -> false)
          | other -> Error (Printf.sprintf "unknown record type %S" other))
      | _ -> Error "missing or non-string \"type\" field")
  | _ -> Error "journal line is not a JSON object"
