(* Wall-clock micro-benchmarks of the simulator and algorithms, one
   Bechamel test per experiment family.  These measure the harness, not
   the paper (the paper's metric is message count, reported by
   Experiments); they are here so performance regressions in the engine
   are visible. *)

open Bechamel
open Toolkit
open Colring_engine
open Colring_core
module Rng = Colring_stats.Rng
module Classic = Colring_classic
module Compose = Colring_compose

let run_algo2 n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  let r =
    Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids
      ~sched:(Scheduler.random (Rng.create ~seed:n))
  in
  assert (not r.exhausted)

let run_algo1 n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  let r =
    Election.run_report Election.Algo1 ~topo:(Topology.oriented n) ~ids
      ~sched:Scheduler.fifo
  in
  assert (not r.exhausted)

let run_algo3 n () =
  let rng = Rng.create ~seed:n in
  let ids = Ids.dense rng ~n in
  let r =
    Election.run_report (Election.Algo3 Algo3.Improved)
      ~topo:(Topology.random_non_oriented rng n)
      ~ids
      ~sched:(Scheduler.random (Rng.split rng))
  in
  assert (not r.exhausted)

let run_lelann n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  ignore
    (Classic.Driver.run ~name:"lelann" ~expect_max:ids
       (fun v -> Classic.Lelann.program ~id:ids.(v))
       ~topo:(Topology.oriented n) ~sched:Scheduler.fifo)

let run_hs n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  ignore
    (Classic.Driver.run ~name:"hs" ~expect_max:ids
       (fun v -> Classic.Hirschberg_sinclair.program ~id:ids.(v))
       ~topo:(Topology.oriented n) ~sched:Scheduler.fifo)

let run_compose n () =
  let ids = Ids.dense (Rng.create ~seed:n) ~n in
  ignore
    (Compose.Corollary5.run ~app:Compose.Corollary5.app_ring_discovery ~ids
       Scheduler.fifo)

let tests =
  [
    Test.make ~name:"algo1 n=64 (4k pulses)" (Staged.stage (run_algo1 64));
    Test.make ~name:"algo2 n=32 (2k pulses)" (Staged.stage (run_algo2 32));
    Test.make ~name:"algo2 n=128 (33k pulses)" (Staged.stage (run_algo2 128));
    Test.make ~name:"algo3 n=64 (8k pulses)" (Staged.stage (run_algo3 64));
    Test.make ~name:"lelann n=64 (4k msgs)" (Staged.stage (run_lelann 64));
    Test.make ~name:"hirschberg-sinclair n=64" (Staged.stage (run_hs 64));
    Test.make ~name:"corollary5 discovery n=16" (Staged.stage (run_compose 16));
  ]

(* {2 Engine throughput}

   Bechamel's OLS above answers "ns per whole run"; the section below
   measures the engine's steady-state delivery rate and allocation
   behaviour directly, and persists the numbers to [BENCH_engine.json]
   so any commit's engine can be compared against any other's. *)

type throughput_case = {
  case_name : string;
  algo : string;
  case_n : int;
  sched_name : string;
  run_once : unit -> int; (* returns deliveries performed *)
}

let tp_algo1 n =
  {
    case_name = Printf.sprintf "algo1 n=%d fifo" n;
    algo = "algo1";
    case_n = n;
    sched_name = "fifo";
    run_once =
      (fun () ->
        let ids = Ids.dense (Rng.create ~seed:n) ~n in
        let r =
          Election.run_report Election.Algo1 ~topo:(Topology.oriented n) ~ids
            ~sched:Scheduler.fifo
        in
        assert (not r.exhausted);
        r.deliveries);
  }

let tp_algo2 n =
  {
    case_name = Printf.sprintf "algo2 n=%d random" n;
    algo = "algo2";
    case_n = n;
    sched_name = "random";
    run_once =
      (fun () ->
        let ids = Ids.dense (Rng.create ~seed:n) ~n in
        let r =
          Election.run_report Election.Algo2 ~topo:(Topology.oriented n) ~ids
            ~sched:(Scheduler.random (Rng.create ~seed:n))
        in
        assert (not r.exhausted);
        r.deliveries);
  }

let tp_algo3 n =
  {
    case_name = Printf.sprintf "algo3 n=%d random" n;
    algo = "algo3";
    case_n = n;
    sched_name = "random";
    run_once =
      (fun () ->
        let rng = Rng.create ~seed:n in
        let ids = Ids.dense rng ~n in
        let r =
          Election.run_report (Election.Algo3 Algo3.Improved)
            ~topo:(Topology.random_non_oriented rng n)
            ~ids
            ~sched:(Scheduler.random (Rng.split rng))
        in
        assert (not r.exhausted);
        r.deliveries);
  }

let tp_lelann n =
  {
    case_name = Printf.sprintf "lelann n=%d fifo" n;
    algo = "lelann";
    case_n = n;
    sched_name = "fifo";
    run_once =
      (fun () ->
        let ids = Ids.dense (Rng.create ~seed:n) ~n in
        let r =
          Classic.Driver.run ~name:"lelann" ~expect_max:ids
            (fun v -> Classic.Lelann.program ~id:ids.(v))
            ~topo:(Topology.oriented n) ~sched:Scheduler.fifo
        in
        r.Classic.Driver.deliveries);
  }

let throughput_cases ~quick =
  if quick then [ tp_algo2 64 ]
  else [ tp_algo1 256; tp_algo2 64; tp_algo2 256; tp_algo3 256; tp_lelann 64 ]

type throughput_result = {
  case : throughput_case;
  runs : int;
  deliveries : int;
  wall_s : float;
  del_per_sec : float;
  minor_words_per_delivery : float;
  top_heap_words : int;
}

(* Repeat whole runs until [min_time] elapses; report aggregate
   throughput and the minor-allocation rate over everything the harness
   did (network construction included, so a steady-state-zero engine
   shows a small positive constant that shrinks as runs grow). *)
let measure ?(min_time = 0.5) case =
  ignore (case.run_once ());
  (* warm-up *)
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let rec go runs deliveries =
    let d = case.run_once () in
    let runs = runs + 1 and deliveries = deliveries + d in
    if Unix.gettimeofday () -. t0 < min_time then go runs deliveries
    else (runs, deliveries)
  in
  let runs, deliveries = go 0 0 in
  let wall_s = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  {
    case;
    runs;
    deliveries;
    wall_s;
    del_per_sec = float_of_int deliveries /. wall_s;
    minor_words_per_delivery =
      (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int deliveries;
    top_heap_words = s1.Gc.top_heap_words;
  }

(* {2 Transport backend throughput}

   Elections per second and per-election wall-clock percentiles for
   each transport backend, with the replay verification pass included
   in the measured work (that is the price an honest backend pays).
   Ordering is load-bearing: the socket rows fork, and Unix.fork is
   forbidden for the rest of the process once any domain has been
   spawned (OCaml 5) — so this section runs before the sweep ladder
   below, and its socket rows run before its domains rows.  When the
   process has already spawned domains (full bench run), the socket
   rows are skipped and recorded as such. *)

module Backend = Colring_transport.Backend

type transport_point = {
  tb_backend : string;
  tb_faults : string;
  tb_trials : int;
  tb_elections_per_sec : float;
  tb_p50_ms : float;
  tb_p99_ms : float;
  tb_verified : int;
}

let transport_fault_cases =
  [
    ("none", Colring_engine.Transport.no_fault);
    ( "lat=100us jit=300us",
      Colring_engine.Transport.faults ~seed:7 ~latency:100 ~jitter:300 () );
  ]

let measure_backend ~trials ~n backend (fault_label, faults) =
  let topo = Topology.oriented n in
  let times = Array.make trials 0.0 in
  let verified = ref 0 in
  for i = 0 to trials - 1 do
    let ids = Ids.dense (Rng.create ~seed:(50 + i)) ~n in
    let t0 = Unix.gettimeofday () in
    let r = Backend.elect ~seed:i ~faults backend Election.Algo2 ~topo ~ids in
    times.(i) <- Unix.gettimeofday () -. t0;
    if r.Backend.verified && Election.ok r.Backend.report then incr verified
  done;
  let total = Array.fold_left ( +. ) 0.0 times in
  Array.sort Float.compare times;
  let pct p =
    times.(min (trials - 1) (int_of_float (p *. float_of_int trials)))
  in
  {
    tb_backend = Backend.name backend;
    tb_faults = fault_label;
    tb_trials = trials;
    tb_elections_per_sec = float_of_int trials /. total;
    tb_p50_ms = pct 0.50 *. 1e3;
    tb_p99_ms = pct 0.99 *. 1e3;
    tb_verified = !verified;
  }

let transport_section ~quick () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Transport backends (elections/sec, per-election latency)\n";
  Printf.printf
    "================================================================\n\n";
  let trials = if quick then 8 else 32 in
  let n = 8 in
  let points = ref [] and skipped = ref [] in
  List.iter
    (fun backend ->
      List.iter
        (fun fc ->
          match backend with
          | Backend.Socket _ -> (
              match measure_backend ~trials ~n backend fc with
              | p -> points := p :: !points
              | exception Failure _ ->
                  (* Socket after a domain spawn: fork unavailable. *)
                  skipped := Backend.name backend :: !skipped)
          | Backend.Sim | Backend.Domains ->
              points := measure_backend ~trials ~n backend fc :: !points)
        transport_fault_cases)
    [
      Backend.Socket { tcp = false };
      Backend.Socket { tcp = true };
      Backend.Sim;
      Backend.Domains;
    ];
  let points = List.rev !points in
  let skipped = List.sort_uniq String.compare !skipped in
  Printf.printf "%-12s %-20s %7s %14s %10s %10s %9s\n" "backend" "faults"
    "trials" "elections/s" "p50 ms" "p99 ms" "verified";
  List.iter
    (fun p ->
      Printf.printf "%-12s %-20s %7d %14.0f %10.3f %10.3f %9d\n" p.tb_backend
        p.tb_faults p.tb_trials p.tb_elections_per_sec p.tb_p50_ms p.tb_p99_ms
        p.tb_verified)
    points;
  if skipped <> [] then
    Printf.printf "skipped (fork unavailable after domain spawn): %s\n"
      (String.concat ", " skipped);
  let json_of_point p =
    Bench_io.Obj
      [
        ("backend", Bench_io.String p.tb_backend);
        ("faults", Bench_io.String p.tb_faults);
        ("trials", Bench_io.Int p.tb_trials);
        ("elections_per_sec", Bench_io.Float p.tb_elections_per_sec);
        ("p50_ms", Bench_io.Float p.tb_p50_ms);
        ("p99_ms", Bench_io.Float p.tb_p99_ms);
        ("verified", Bench_io.Int p.tb_verified);
      ]
  in
  Bench_io.Obj
    [
      ("ring_n", Bench_io.Int n);
      ("results", Bench_io.List (List.map json_of_point points));
      ( "skipped_backends",
        Bench_io.List (List.map (fun s -> Bench_io.String s) skipped) );
      ( "all_verified",
        Bench_io.Bool
          (List.for_all (fun p -> p.tb_verified = p.tb_trials) points) );
    ]

(* {2 Sweep throughput}

   The harness-level counterpart of the engine section: one E2-style
   grid (Algorithm 2 across oriented workloads, random adversary) swept
   with the lib/runtime domain pool at several domain counts.  Sweep
   results are bit-identical for every domain count (asserted below on
   every measurement), so the only thing that may vary is the wall
   clock — which is exactly what this section records. *)

module Harness = Colring_harness
module Pool = Colring_runtime.Pool

let sweep_jobs_ladder = [ 1; 2; 4 ]

let sweep_grid ~quick ~jobs () =
  Harness.Sweep.election ~jobs
    ~algorithms:[ Election.Algo2 ]
    ~workloads:[ Harness.Workload.dense; Harness.Workload.sparse ~factor:8 ]
    ~ns:(if quick then [ 2; 4; 8; 16 ] else [ 2; 4; 8; 16; 32; 64 ])
    ~seeds:(List.init (if quick then 3 else 6) (fun i -> i + 1))
    ~schedulers:[ (fun s -> Scheduler.random (Rng.create ~seed:s)) ]
    ()

type sweep_point = {
  sw_domains : int;
  sw_runs : int; (* whole-grid sweeps performed *)
  sw_cells : int; (* cells per sweep *)
  sw_wall : float;
  sw_cells_per_sec : float;
  sw_deterministic : bool; (* measurements = the jobs=1 reference *)
}

let measure_sweep ?(min_time = 0.5) ~quick ~reference ~jobs () =
  ignore (sweep_grid ~quick ~jobs ()) (* warm-up *);
  let t0 = Unix.gettimeofday () in
  let rec go runs cells deterministic =
    let ms = sweep_grid ~quick ~jobs () in
    let runs = runs + 1 and cells = cells + List.length ms in
    let deterministic = deterministic && ms = reference in
    if Unix.gettimeofday () -. t0 < min_time then go runs cells deterministic
    else (runs, cells, deterministic)
  in
  let runs, cells, deterministic = go 0 0 true in
  let wall = Unix.gettimeofday () -. t0 in
  {
    sw_domains = jobs;
    sw_runs = runs;
    sw_cells = cells / runs;
    sw_wall = wall;
    sw_cells_per_sec = float_of_int cells /. wall;
    sw_deterministic = deterministic;
  }

let sweep_section ~quick () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Sweep throughput (E2-style grid on the domain pool)\n";
  Printf.printf
    "================================================================\n\n";
  Printf.printf "%-8s %6s %7s %12s %14s %14s\n" "domains" "runs" "cells"
    "wall s" "cells/s" "deterministic";
  let reference = sweep_grid ~quick ~jobs:1 () in
  let points =
    List.map (fun jobs -> measure_sweep ~quick ~reference ~jobs ())
      sweep_jobs_ladder
  in
  List.iter
    (fun p ->
      Printf.printf "%-8d %6d %7d %12.3f %14.0f %14b\n" p.sw_domains p.sw_runs
        p.sw_cells p.sw_wall p.sw_cells_per_sec p.sw_deterministic)
    points;
  let cps_at domains =
    match List.find_opt (fun p -> p.sw_domains = domains) points with
    | Some p -> p.sw_cells_per_sec
    | None -> nan
  in
  let speedup = cps_at 4 /. cps_at 1 in
  Printf.printf "\nspeedup at 4 domains vs 1: %.2fx (machine recommends %d)\n"
    speedup
    (Domain.recommended_domain_count ());
  let json_of_point p =
    Bench_io.Obj
      [
        ("domains", Bench_io.Int p.sw_domains);
        ("runs", Bench_io.Int p.sw_runs);
        ("cells", Bench_io.Int p.sw_cells);
        ("wall_seconds", Bench_io.Float p.sw_wall);
        ("cells_per_sec", Bench_io.Float p.sw_cells_per_sec);
        ("deterministic_vs_jobs1", Bench_io.Bool p.sw_deterministic);
      ]
  in
  Bench_io.Obj
    [
      ( "grid",
        Bench_io.String
          "algo2 x {dense, sparse-x8} x ns x seeds, random adversary" );
      ("cells_per_sweep", Bench_io.Int (List.length reference));
      ("results", Bench_io.List (List.map json_of_point points));
      ("speedup_4_vs_1", Bench_io.Float speedup);
      ( "deterministic_across_jobs",
        Bench_io.Bool (List.for_all (fun p -> p.sw_deterministic) points) );
    ]

(* {2 Batched elections (E17)}

   Many independent elections per call: a loop of sequential
   Election.run (what `colring elect` does K times) against the same
   jobs fanned out over flocks by Harness.Batch (what `colring batch`
   does).  Reports elections/sec and completion-latency percentiles —
   the time from batch start until each job finishes, which is the
   number a job-server client observes.  Flock rows at pool width 1
   isolate the batching gain itself; wider rows add domain
   parallelism on machines that have the cores (this container's
   1-CPU caveat applies, see EXPERIMENTS.md). *)

module Batch = Harness.Batch

let batch_ring_n = 8
let batch_sizes ~quick = if quick then [ 100; 300; 1000 ] else [ 1_000; 10_000; 100_000 ]

let batch_specs size =
  Array.init size (fun i ->
      {
        Batch.algorithm = Election.Algo2;
        n = batch_ring_n;
        seed = i + 1;
        id_max = 2 * batch_ring_n;
      })

let batch_sched seed = Scheduler.random (Rng.create ~seed)

type batch_point = {
  bp_size : int;
  bp_mode : string;
  bp_jobs : int;
  bp_wall : float;
  bp_eps : float;
  bp_p50_ms : float;
  bp_p99_ms : float;
}

let batch_point ~size ~mode ~jobs ~wall lat =
  Array.sort Float.compare lat;
  {
    bp_size = size;
    bp_mode = mode;
    bp_jobs = jobs;
    bp_wall = wall;
    bp_eps = float_of_int size /. wall;
    bp_p50_ms = Batch.percentile lat 0.50 *. 1e3;
    bp_p99_ms = Batch.percentile lat 0.99 *. 1e3;
  }

let measure_individual size =
  let specs = batch_specs size in
  let topo = Topology.oriented batch_ring_n in
  let lat = Array.make size 0.0 in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i s ->
      let r =
        Election.run_report ~seed:s.Batch.seed s.Batch.algorithm ~topo
          ~ids:(Batch.ids_of_spec s)
          ~sched:(batch_sched s.Batch.seed)
      in
      assert (not r.exhausted);
      lat.(i) <- Unix.gettimeofday () -. t0)
    specs;
  let wall = Unix.gettimeofday () -. t0 in
  batch_point ~size ~mode:"individual" ~jobs:1 ~wall lat

let measure_flock ~jobs size =
  let o =
    Batch.run ~jobs ~now:Unix.gettimeofday ~sched:batch_sched
      (batch_specs size)
  in
  Array.iter (fun r -> assert (not r.Election.exhausted)) o.Batch.reports;
  batch_point ~size
    ~mode:(Printf.sprintf "flock -j%d" jobs)
    ~jobs ~wall:o.Batch.elapsed
    (Array.copy o.Batch.latencies)

let batch_section ~quick () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Batched elections (algo2 n=%d, random adversary)\n"
    batch_ring_n;
  Printf.printf
    "================================================================\n\n";
  let jobs_ladder = List.sort_uniq compare [ 1; Pool.default_jobs () ] in
  let points =
    List.concat_map
      (fun size ->
        measure_individual size
        :: List.map (fun jobs -> measure_flock ~jobs size) jobs_ladder)
      (batch_sizes ~quick)
  in
  Printf.printf "%-8s %-12s %10s %14s %10s %10s\n" "batch" "mode" "wall s"
    "elections/s" "p50 ms" "p99 ms";
  List.iter
    (fun p ->
      Printf.printf "%-8d %-12s %10.3f %14.0f %10.3f %10.3f\n" p.bp_size
        p.bp_mode p.bp_wall p.bp_eps p.bp_p50_ms p.bp_p99_ms)
    points;
  let speedups =
    List.filter_map
      (fun size ->
        let at mode =
          List.find_opt (fun p -> p.bp_size = size && p.bp_mode = mode) points
        in
        match (at "individual", at "flock -j1") with
        | Some ind, Some fl -> Some (size, fl.bp_eps /. ind.bp_eps)
        | _ -> None)
      (batch_sizes ~quick)
  in
  List.iter
    (fun (size, s) ->
      Printf.printf "\nflock -j1 vs individual at batch %d: %.2fx" size s)
    speedups;
  print_newline ();
  let json_of_point p =
    Bench_io.Obj
      [
        ("batch_size", Bench_io.Int p.bp_size);
        ("mode", Bench_io.String p.bp_mode);
        ("pool_jobs", Bench_io.Int p.bp_jobs);
        ("wall_seconds", Bench_io.Float p.bp_wall);
        ("elections_per_sec", Bench_io.Float p.bp_eps);
        ("p50_ms", Bench_io.Float p.bp_p50_ms);
        ("p99_ms", Bench_io.Float p.bp_p99_ms);
      ]
  in
  Bench_io.Obj
    [
      ("algo", Bench_io.String "algo2");
      ("ring_n", Bench_io.Int batch_ring_n);
      ( "batch_sizes",
        Bench_io.List
          (List.map (fun s -> Bench_io.Int s) (batch_sizes ~quick)) );
      ("results", Bench_io.List (List.map json_of_point points));
      ( "speedup_flock_j1_vs_individual",
        Bench_io.List
          (List.map
             (fun (size, s) ->
               Bench_io.Obj
                 [
                   ("batch_size", Bench_io.Int size);
                   ("speedup", Bench_io.Float s);
                 ])
             speedups) );
    ]

(* {2 Walk elections on graphs (E18)}

   The 2-edge-connected generalization (lib/graph Gelection) timed per
   --topology family: elections/sec for the full plan-once-run-many
   loop, plus the walk-length overhead each family pays over a
   same-size ring (pulse complexity is walk * ID_max, so walk/n is the
   message-cost factor vs Algorithm 1 on a ring). *)

module Gelection = Colring_graph.Gelection
module Topo = Harness.Topo

type graph_point = {
  gp_topology : string;
  gp_n : int;
  gp_walk : int;
  gp_trials : int;
  gp_ok : int;
  gp_wall : float;
  gp_eps : float;
}

let graph_families = [ "ring:8"; "theta:8"; "k4"; "bowtie"; "random2ec:12:5" ]

let graph_section ~quick () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Walk elections on 2-edge-connected graphs (E18 families)\n";
  Printf.printf
    "================================================================\n\n";
  let trials = if quick then 50 else 500 in
  let points =
    List.map
      (fun name ->
        let spec =
          match Topo.parse name with Ok s -> s | Error e -> failwith e
        in
        let g = Topo.materialize ~default_n:8 spec in
        let n = Colring_graph.Gtopology.n g in
        let plan = Gelection.plan g in
        let ok = ref 0 in
        let t0 = Unix.gettimeofday () in
        for i = 1 to trials do
          let ids =
            Ids.distinct (Rng.create ~seed:(i * 13 + 1)) ~n ~id_max:(2 * n)
          in
          let r =
            Gelection.run_report plan ~ids ~sched:(batch_sched (i + 5))
          in
          if Gelection.ok r then incr ok
        done;
        let wall = Unix.gettimeofday () -. t0 in
        {
          gp_topology = name;
          gp_n = n;
          gp_walk = Gelection.walk_length plan;
          gp_trials = trials;
          gp_ok = !ok;
          gp_wall = wall;
          gp_eps = float_of_int trials /. Float.max wall 1e-9;
        })
      graph_families
  in
  Printf.printf "%-16s %4s %6s %10s %8s %14s\n" "topology" "n" "walk"
    "overhead" "ok" "elections/s";
  List.iter
    (fun p ->
      Printf.printf "%-16s %4d %6d %10.2f %5d/%-3d %14.0f\n" p.gp_topology
        p.gp_n p.gp_walk
        (float_of_int p.gp_walk /. float_of_int p.gp_n)
        p.gp_ok p.gp_trials p.gp_eps)
    points;
  let json_of_point p =
    Bench_io.Obj
      [
        ("topology", Bench_io.String p.gp_topology);
        ("n", Bench_io.Int p.gp_n);
        ("walk_len", Bench_io.Int p.gp_walk);
        ( "walk_overhead",
          Bench_io.Float (float_of_int p.gp_walk /. float_of_int p.gp_n) );
        ("trials", Bench_io.Int p.gp_trials);
        ("ok", Bench_io.Int p.gp_ok);
        ("wall_seconds", Bench_io.Float p.gp_wall);
        ("elections_per_sec", Bench_io.Float p.gp_eps);
      ]
  in
  Bench_io.Obj
    [
      ("algorithm", Bench_io.String "walk-election");
      ("results", Bench_io.List (List.map json_of_point points));
      ( "all_ok",
        Bench_io.Bool (List.for_all (fun p -> p.gp_ok = p.gp_trials) points) );
    ]

(* ------------------------------------------------------------------ *)
(* Model-checker throughput: the scale-up headline.  The fixed
   workload is algo3-doubled at n=4 — the heaviest pre-scale-up E15
   row — so states/sec is comparable across engine generations;
   [mc_baseline_states_per_sec] is the recorded replay-only figure. *)

let mc_baseline_states_per_sec = 31043.

let mc_cases ~quick =
  if quick then [ ("algo3-doubled", 4) ]
  else [ ("algo3-doubled", 4); ("algo2", 5); ("algo3-improved", 5) ]

let mc_section ~quick () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Model checker (incremental undo + POR + symmetry)\n";
  Printf.printf
    "================================================================\n\n";
  Printf.printf "%-20s %4s %10s %10s %12s\n" "target" "n" "states" "wall(s)"
    "states/s";
  let points =
    List.map
      (fun (target, n) ->
        let ids = Ids.distinct (Rng.create ~seed:1) ~n ~id_max:n in
        let (Colring_mc.Spec.Packed spec) =
          Colring_mc.Spec.of_target target ~ids ~topo_seed:2
        in
        let t0 = Unix.gettimeofday () in
        let r = Colring_mc.Mc.check spec in
        let wall = Unix.gettimeofday () -. t0 in
        let s = r.Colring_mc.Mc.stats in
        let sps = float_of_int s.Colring_mc.Mc.states /. Float.max wall 1e-9 in
        Printf.printf "%-20s %4d %10d %10.3f %12.0f\n" target n
          s.Colring_mc.Mc.states wall sps;
        ( target,
          n,
          s,
          Option.is_none r.Colring_mc.Mc.counterexample
          && not s.Colring_mc.Mc.truncated,
          wall,
          sps ))
      (mc_cases ~quick)
  in
  let headline =
    List.filter_map
      (fun (target, n, _, _, _, sps) ->
        if String.equal target "algo3-doubled" && n = 4 then Some sps else None)
      points
  in
  let headline = match headline with [] -> 0. | sps :: _ -> sps in
  Printf.printf "\nheadline speedup vs replay-only checker: %.1fx\n"
    (headline /. mc_baseline_states_per_sec);
  let json_of_point (target, n, s, verified, wall, sps) =
    Bench_io.Obj
      [
        ("target", Bench_io.String target);
        ("n", Bench_io.Int n);
        ("states", Bench_io.Int s.Colring_mc.Mc.states);
        ("schedules", Bench_io.Int s.Colring_mc.Mc.schedules);
        ("replayed_deliveries", Bench_io.Int s.Colring_mc.Mc.replayed_deliveries);
        ("undone_deliveries", Bench_io.Int s.Colring_mc.Mc.undone_deliveries);
        ("verified", Bench_io.Bool verified);
        ("wall_seconds", Bench_io.Float wall);
        ("states_per_sec", Bench_io.Float sps);
      ]
  in
  Bench_io.Obj
    [
      ("workload", Bench_io.String "exhaustive check, default parameters");
      ("results", Bench_io.List (List.map json_of_point points));
      ("baseline_states_per_sec", Bench_io.Float mc_baseline_states_per_sec);
      ( "speedup_vs_baseline",
        Bench_io.Float (headline /. mc_baseline_states_per_sec) );
    ]

(* The shape downstream tooling relies on; called on the file just
   written, so `bench/main.exe -- throughput` fails loudly if the
   schema regresses. *)
let validate_report path =
  let fail msg =
    failwith (Printf.sprintf "%s: schema_version 6 check failed: %s" path msg)
  in
  let j = try Bench_io.read_file path with
    | Bench_io.Parse_error e -> fail ("unparsable JSON: " ^ e)
  in
  let require cond msg = if not cond then fail msg in
  let int_field obj k = Option.bind (Bench_io.member k obj) Bench_io.get_int in
  let float_field obj k =
    Option.bind (Bench_io.member k obj) Bench_io.get_float
  in
  require (int_field j "schema_version" = Some 6) "schema_version must be 6";
  require (int_field j "domains_recommended" <> None)
    "missing domains_recommended";
  (match Bench_io.member "transport" j with
  | None -> fail "missing transport section"
  | Some tr -> (
      match Option.bind (Bench_io.member "results" tr) Bench_io.get_list with
      | Some (_ :: _ as points) ->
          List.iter
            (fun p ->
              require
                (Option.bind (Bench_io.member "backend" p) Bench_io.get_string
                <> None)
                "transport point missing backend";
              require (float_field p "elections_per_sec" <> None)
                "transport point missing elections_per_sec")
            points
      | _ -> fail "transport missing results list"));
  (match Option.bind (Bench_io.member "experiments" j) Bench_io.get_list with
  | Some (_ :: _ as cases) ->
      List.iter
        (fun c ->
          require (float_field c "deliveries_per_sec" <> None)
            "experiment entry missing deliveries_per_sec")
        cases
  | _ -> fail "missing or empty experiments list");
  (match Bench_io.member "sweep" j with
  | None -> fail "missing sweep section"
  | Some sweep -> (
      require (float_field sweep "speedup_4_vs_1" <> None)
        "sweep missing speedup_4_vs_1";
      match Option.bind (Bench_io.member "results" sweep) Bench_io.get_list with
      | Some (_ :: _ as points) ->
          List.iter
            (fun p ->
              require (int_field p "domains" <> None) "sweep point missing domains";
              require (float_field p "cells_per_sec" <> None)
                "sweep point missing cells_per_sec")
            points
      | _ -> fail "sweep missing results list"));
  (match Bench_io.member "batch" j with
  | None -> fail "missing batch section"
  | Some batch -> (
      match Option.bind (Bench_io.member "results" batch) Bench_io.get_list with
      | Some (_ :: _ as points) ->
          List.iter
            (fun p ->
              require (int_field p "batch_size" <> None)
                "batch point missing batch_size";
              require (float_field p "elections_per_sec" <> None)
                "batch point missing elections_per_sec";
              require (float_field p "p50_ms" <> None)
                "batch point missing p50_ms";
              require (float_field p "p99_ms" <> None)
                "batch point missing p99_ms")
            points
      | _ -> fail "batch missing results list"));
  (match Bench_io.member "graph" j with
  | None -> fail "missing graph section"
  | Some graph -> (
      match Option.bind (Bench_io.member "results" graph) Bench_io.get_list with
      | Some (_ :: _ as points) ->
          List.iter
            (fun p ->
              require
                (Option.bind (Bench_io.member "topology" p) Bench_io.get_string
                <> None)
                "graph point missing topology";
              require (int_field p "walk_len" <> None)
                "graph point missing walk_len";
              require (float_field p "walk_overhead" <> None)
                "graph point missing walk_overhead";
              require (float_field p "elections_per_sec" <> None)
                "graph point missing elections_per_sec")
            points
      | _ -> fail "graph missing results list"));
  match Bench_io.member "model_checker" j with
  | None -> fail "missing model_checker section"
  | Some mc -> (
      require (float_field mc "baseline_states_per_sec" <> None)
        "model_checker missing baseline_states_per_sec";
      require (float_field mc "speedup_vs_baseline" <> None)
        "model_checker missing speedup_vs_baseline";
      match Option.bind (Bench_io.member "results" mc) Bench_io.get_list with
      | Some (_ :: _ as points) ->
          List.iter
            (fun p ->
              require
                (Option.bind (Bench_io.member "target" p) Bench_io.get_string
                <> None)
                "model_checker point missing target";
              require (int_field p "states" <> None)
                "model_checker point missing states";
              require (float_field p "states_per_sec" <> None)
                "model_checker point missing states_per_sec")
            points
      | _ -> fail "model_checker missing results list")

let json_of_result r =
  Bench_io.Obj
    [
      ("name", Bench_io.String r.case.case_name);
      ("algo", Bench_io.String r.case.algo);
      ("n", Bench_io.Int r.case.case_n);
      ("scheduler", Bench_io.String r.case.sched_name);
      ("runs", Bench_io.Int r.runs);
      ("deliveries_total", Bench_io.Int r.deliveries);
      ("wall_seconds", Bench_io.Float r.wall_s);
      ("deliveries_per_sec", Bench_io.Float r.del_per_sec);
      ("minor_words_per_delivery", Bench_io.Float r.minor_words_per_delivery);
      ("top_heap_words", Bench_io.Int r.top_heap_words);
    ]

let throughput ?(quick = false) ?(json_path = "BENCH_engine.json") () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Engine throughput (whole-run repeats, wall clock)\n";
  Printf.printf
    "================================================================\n\n";
  Printf.printf "%-24s %6s %12s %14s %12s\n" "case" "runs" "deliveries"
    "deliveries/s" "minorw/del";
  let results = List.map (fun c -> measure c) (throughput_cases ~quick) in
  List.iter
    (fun r ->
      Printf.printf "%-24s %6d %12d %14.0f %12.2f\n" r.case.case_name r.runs
        r.deliveries r.del_per_sec r.minor_words_per_delivery)
    results;
  (* Transport before sweep: the sweep ladder spawns domains, after
     which the socket rows could no longer fork. *)
  let transport = transport_section ~quick () in
  let sweep = sweep_section ~quick () in
  let batch = batch_section ~quick () in
  let graph = graph_section ~quick () in
  let mc = mc_section ~quick () in
  Bench_io.write_file json_path
    (Bench_io.Obj
       [
         ("schema_version", Bench_io.Int 6);
         ("suite", Bench_io.String "colring-engine");
         ("ocaml_version", Bench_io.String Sys.ocaml_version);
         ("word_size_bits", Bench_io.Int Sys.word_size);
         ("domains_recommended", Bench_io.Int (Domain.recommended_domain_count ()));
         ("experiments", Bench_io.List (List.map json_of_result results));
         ("transport", transport);
         ("sweep", sweep);
         ("batch", batch);
         ("graph", graph);
         ("model_checker", mc);
       ]);
  validate_report json_path;
  Printf.printf "\nwrote %s (schema_version 6, shape validated)\n" json_path

let run () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Timing (bechamel): wall-clock per full run, ns\n";
  Printf.printf
    "================================================================\n\n";
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second 0.5)
      ~kde:None ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        analysed)
    tests;
  print_newline ();
  throughput ()
