; Reviewed exceptions to the colring-lint rules.  Every entry must
; carry a note saying why the exception is sound; entries that stop
; suppressing anything, or whose file disappears, fail the lint run.

(allow (rule deprecated-arg) (file test/test_sink.ml)
       (note "the sink/record_trace equivalence test exists to exercise the \
              deprecated argument until its removal (DESIGN.md section 6)"))

(allow (rule determinism) (file bench/experiments.ml)
       (note "E15 is a throughput table: its time/states-per-sec columns \
              are wall-clock by design (the only nondeterministic cells in \
              the bench output, called out in EXPERIMENTS.md); every other \
              E15 column is deterministic and jobs-independent"))
