; Reviewed exceptions to the colring-lint rules.  Every entry must
; carry a note saying why the exception is sound; entries that stop
; suppressing anything, or whose file disappears, fail the lint run.

(allow (rule deprecated-arg) (file test/test_sink.ml)
       (note "the sink/record_trace equivalence test exists to exercise the \
              deprecated argument until its removal (DESIGN.md section 6)"))
