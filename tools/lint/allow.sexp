; Reviewed exceptions to the colring-lint rules.  Every entry must
; carry a note saying why the exception is sound; entries that stop
; suppressing anything, or whose file disappears, fail the lint run.

(allow (rule determinism) (file bench/experiments.ml)
       (note "E15/E16 are throughput tables: their time and per-sec columns \
              are wall-clock by design (the only nondeterministic cells in \
              the bench output, called out in EXPERIMENTS.md); every other \
              column is deterministic and jobs-independent"))

(allow (rule determinism) (file bin/colring.ml)
       (note "the batch subcommand's elections/sec and latency percentile \
              columns are wall-clock by design; the clock is injected into \
              Harness.Batch.run as a parameter, so lib/harness stays \
              clock-free and reports/journals remain deterministic"))

(allow (rule determinism) (file lib/transport/socket.ml)
       (note "the real-process coordinator schedules fault-injected \
              deliveries on the wall clock (select timeouts, due times, the \
              run deadline) — that is the point of a real-network backend; \
              reproducible semantics are preserved by the recorded delivery \
              schedule, which replays deterministically on the simulator \
              and must match the live run byte-for-byte"))
