; Manifest of hot-path functions patrolled by the [hot-alloc] rule.
; These are the per-delivery functions covered by the null-sink
; allocation budget in bench/; adding a function here subjects its
; body to the no-allocation checks (see tools/lint/lint_rules.ml).

(hot (file lib/engine/envq.ml)
     (functions push pop head_seq head_batch head_depth is_empty length))
(hot (file lib/engine/ring.ml)
     (functions push pop peek is_empty length))
(hot (file lib/engine/flock.ml)
     (functions pq_push pq_pop pq_head_seq pq_head_batch mark_nonempty unmark
                enqueue deliver step step_batch view))
(hot (file lib/runtime/pool.ml)
     (functions static_loop pop_own try_steal steal_scan steal_loop run_range
                pack))
(hot (file lib/engine/network.ml)
     (functions enqueue deliver_from step view mark_nonempty unmark_if_empty
                slot enabled_count enabled_scan enabled_link))
(hot (file lib/engine/scheduler.ml)
     (functions argmin_scan argmin3 rr_scan k_seq k_neg_seq k_batch k_cw_first
                k_zero mem_scan))
(hot (file lib/graph/gnetwork.ml)
     (functions mark_nonempty unmark_if_empty view deliver_from step
                enabled_count enabled_scan enabled_link))
(hot (file lib/graph/gelection.ml)
     (functions walk_step))
(hot (file lib/mc/mc.ml)
     (functions bit subset))
(hot (file lib/engine/output.ml)
     (functions add_int))
(hot (file lib/engine/transport.ml)
     (functions mix delay_us fault_scan jit_scan))
(hot (file lib/transport/domains.ml)
     (functions try_take))
