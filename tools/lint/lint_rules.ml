(* The rule set, implemented as one [Ast_iterator] pass over a file's
   Parsetree.  Rules are scoped by repo-relative path, so the same
   source text can be linted "as" different files (the fixture tests
   rely on this).

   Rules:
   - [determinism]     no [Random.*] outside lib/stats/rng.ml; no
                       [Sys.time]/[Unix.gettimeofday]/[Unix.time]
                       outside bench/timing.ml; no [Hashtbl.hash],
                       [Marshal.*] or [Obj.*] anywhere under lib/.
   - [poly-compare]    in lib/engine/: no [Stdlib.compare] or bare
                       [compare]; no [=]/[<>] unless one operand is a
                       syntactically immediate constant.
   - [hot-alloc]       inside manifest functions (hot.sexp): no
                       closures, tuples, records, arrays, allocating
                       constructors, [ref], [^]/[@], [Printf]/
                       [Format]/[Fmt], or partial applications of
                       same-file functions — except under a live-sink
                       guard ([if ... observed/enabled ...]).
   - [sink-discipline] no [Trace.<Constructor>] construction and no
                       [Trace.record]/[Trace.create] outside
                       lib/engine/sink.ml (pattern matches are fine).
   - [deprecated-arg]  no [~record_trace]/[?record_trace] anywhere —
                       the argument was removed; the rule guards
                       against reintroduction.
   - [mli-coverage]    every lib/**/*.ml has a matching .mli
                       (checked over file lists, see {!mli_coverage}).

   The domain-safety rules ([shared-state] / [atomics-discipline] /
   [dls-discipline]) live in lint_domain.ml, driven by the
   shared.sexp manifest. *)

open Parsetree

type ctx = {
  path : string;
  hot_functions : string list;
  (* Name of the manifest function currently being walked, if any. *)
  mutable hot : string option;
  (* > 0 inside an [if] branch guarded by a live-sink check — the
     slow path where allocation is the point. *)
  mutable guard_depth : int;
  (* Arity of every top-level function of this file, for the
     partial-application check. *)
  arity : (string, int) Hashtbl.t;
  mutable diags : Lint_diag.t list;
}

let report ctx ~rule ~loc fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.diags <- Lint_diag.make ~rule ~file:ctx.path ~loc msg :: ctx.diags)
    fmt

let starts_with prefix s = String.starts_with ~prefix s
let in_lib ctx = starts_with "lib/" ctx.path
let in_engine ctx = starts_with "lib/engine/" ctx.path
let dotted lid = String.concat "." (Longident.flatten lid)

(* ------------------------------------------------------------------ *)
(* determinism *)

let check_determinism ctx ~loc lid =
  match Longident.flatten lid with
  | "Random" :: _ :: _ when not (String.equal ctx.path "lib/stats/rng.ml") ->
      report ctx ~rule:"determinism" ~loc
        "%s: ambient randomness breaks run reproducibility; draw from the \
         seeded Colring_stats.Rng streams (only lib/stats/rng.ml may touch \
         Random)"
        (dotted lid)
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ]
    when not (String.equal ctx.path "bench/timing.ml") ->
      report ctx ~rule:"determinism" ~loc
        "%s: wall-clock reads make runs irreproducible; timing belongs in \
         bench/timing.ml only"
        (dotted lid)
  | ("Marshal" | "Obj") :: _ :: _ when in_lib ctx ->
      report ctx ~rule:"determinism" ~loc
        "%s: unsafe / representation-dependent primitives are forbidden in \
         lib/"
        (dotted lid)
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] when in_lib ctx ->
      report ctx ~rule:"determinism" ~loc
        "%s: polymorphic hashing is representation-dependent and forbidden \
         in lib/"
        (dotted lid)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* poly-compare *)

let rec syntactically_immediate e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  (* Constant constructors: true / false / () / [] / None and any
     immediate enum constructor. *)
  | Pexp_construct (_, None) -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> syntactically_immediate e
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-" | "~+"); _ }; _ },
        [ (_, e) ] ) ->
      syntactically_immediate e
  | _ -> false

(* Flags bare [compare] / [Stdlib.compare] anywhere in lib/engine/,
   and first-class [(=)] / [(<>)] (the fully applied binary form is
   judged by {!check_poly_compare_apply} instead). *)
let check_poly_compare_ident ctx ~loc lid =
  if in_engine ctx then
    match Longident.flatten lid with
    | [ "compare" ] | [ "Stdlib"; "compare" ] ->
        report ctx ~rule:"poly-compare" ~loc
          "polymorphic compare in lib/engine/; use Int.compare (or a \
           per-type compare)"
    | [ (("=" | "<>") as op) ] | [ "Stdlib"; (("=" | "<>") as op) ] ->
        report ctx ~rule:"poly-compare" ~loc
          "first-class polymorphic (%s) in lib/engine/; use a monomorphic \
           equality such as Int.equal"
          op
    | _ -> ()

let check_poly_compare_apply ctx ~loc op args =
  if in_engine ctx then
    match args with
    | [ (_, a); (_, b) ]
      when not (syntactically_immediate a || syntactically_immediate b) ->
        report ctx ~rule:"poly-compare" ~loc
          "(%s) at a possibly non-immediate type in lib/engine/; use \
           Int.equal / Bool.equal / Port.equal / Output.equal, or compare \
           against a literal"
          op
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* sink-discipline *)

let check_sink_discipline_construct ctx ~loc lid =
  match Longident.flatten lid with
  | "Trace" :: _ :: _ when not (String.equal ctx.path "lib/engine/sink.ml") ->
      report ctx ~rule:"sink-discipline" ~loc
        "%s: Trace events may only be constructed by lib/engine/sink.ml \
         (Sink.memory is the one emission path); consume traces through \
         Trace.events / Trace.consumed_ports instead"
        (dotted lid)
  | _ -> ()

let check_sink_discipline_ident ctx ~loc lid =
  match Longident.flatten lid with
  | [ "Trace"; ("record" | "create") ]
    when not (String.equal ctx.path "lib/engine/sink.ml") ->
      report ctx ~rule:"sink-discipline" ~loc
        "%s: trace buffers are built by Sink.memory only; pass \
         ~sink:(Sink.memory ()) and read the buffer back"
        (dotted lid)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* deprecated-arg *)

(* [?record_trace] was removed outright (DESIGN.md section 6); the
   rule survives as the anti-reintroduction guard, with no exempt
   definition sites left — the label may not appear anywhere, not
   even where it used to be defined. *)
let check_deprecated_label ctx ~loc label =
  match label with
  | Asttypes.Labelled "record_trace" | Asttypes.Optional "record_trace" ->
      report ctx ~rule:"deprecated-arg" ~loc
        "?record_trace was removed (DESIGN.md section 6); pass \
         ~sink:(Sink.memory ()) and read the buffer with Network.trace"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* hot-alloc *)

let hot_report ctx ~loc what =
  match ctx.hot with
  | Some fn when ctx.guard_depth = 0 ->
      report ctx ~rule:"hot-alloc" ~loc
        "%s inside hot function [%s] (hot.sexp manifest); the delivery hot \
         path must stay allocation-free — move it behind the sink guard or \
         out of the hot function"
        what fn
  | _ -> ()

let formatting_module lid =
  match Longident.flatten lid with
  | ("Printf" | "Format" | "Fmt") :: _ :: _ -> true
  | _ -> false

(* Does a guard condition consult the live-sink switches?  [observed]
   is the Network field caching [sink.enabled]; either spelling marks
   the deliberate pay-when-observed slow path. *)
let mentions_sink_guard cond =
  let found = ref false in
  let check_lid lid =
    match List.rev (Longident.flatten lid) with
    | last :: _
      when String.equal last "observed" || String.equal last "enabled" ->
        found := true
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> check_lid txt
          | Pexp_field (_, { txt; _ }) -> check_lid txt
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it cond;
  !found

(* ------------------------------------------------------------------ *)
(* Arity pre-pass (for the partial-application check) *)

let rec count_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> 1 + count_params body
  | Pexp_newtype (_, body) -> count_params body
  | Pexp_function _ -> 1
  | _ -> 0

let collect_arities structure =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  let arity = count_params vb.pvb_expr in
                  if arity > 0 then Hashtbl.replace tbl txt arity
              | _ -> ())
            bindings
      | _ -> ())
    structure;
  tbl

(* ------------------------------------------------------------------ *)
(* The expression walker *)

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr it e =
    let loc = e.pexp_loc in
    (* Checks on this node. *)
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        check_determinism ctx ~loc txt;
        check_poly_compare_ident ctx ~loc txt;
        check_sink_discipline_ident ctx ~loc txt;
        if formatting_module txt then
          hot_report ctx ~loc (Printf.sprintf "formatting (%s)" (dotted txt))
    | Pexp_construct ({ txt; _ }, arg) ->
        check_sink_discipline_construct ctx ~loc txt;
        if Option.is_some arg then
          hot_report ctx ~loc "allocating constructor application"
    | Pexp_fun (label, _, _, _) ->
        check_deprecated_label ctx ~loc label;
        hot_report ctx ~loc "closure"
    | Pexp_function _ -> hot_report ctx ~loc "closure"
    | Pexp_tuple _ -> hot_report ctx ~loc "tuple allocation"
    | Pexp_record _ -> hot_report ctx ~loc "record allocation"
    | Pexp_array _ -> hot_report ctx ~loc "array literal"
    | Pexp_variant (_, Some _) -> hot_report ctx ~loc "polymorphic variant"
    | Pexp_lazy _ -> hot_report ctx ~loc "lazy thunk"
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        (match Longident.flatten txt with
        | [ "ref" ] -> hot_report ctx ~loc "ref cell allocation"
        | [ ("^" | "@" | "^^") ] ->
            hot_report ctx ~loc "string/list concatenation"
        | [ ("=" | "<>") ] -> ()
        | [ f ] -> (
            match Hashtbl.find_opt ctx.arity f with
            | Some arity when List.length args < arity ->
                hot_report ctx ~loc
                  (Printf.sprintf
                     "partial application of [%s] (%d of %d arguments)" f
                     (List.length args) arity)
            | _ -> ())
        | _ -> ());
        List.iter (fun (label, _) -> check_deprecated_label ctx ~loc label) args
    | Pexp_apply (_, args) ->
        List.iter (fun (label, _) -> check_deprecated_label ctx ~loc label) args
    | _ -> ());
    (* Traversal, with two custom cases. *)
    match e.pexp_desc with
    | Pexp_ifthenelse (cond, then_, else_)
      when Option.is_some ctx.hot && mentions_sink_guard cond ->
        (* The guard test itself runs on the hot path; its branches are
           the deliberate pay-when-observed slow path. *)
        it.Ast_iterator.expr it cond;
        ctx.guard_depth <- ctx.guard_depth + 1;
        it.Ast_iterator.expr it then_;
        Option.iter (it.Ast_iterator.expr it) else_;
        ctx.guard_depth <- ctx.guard_depth - 1
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); _ }; _ },
          ([ _; _ ] as args) ) ->
        (* Binary [=] / [<>]: judge by operand immediacy and walk only
           the operands, so the callee ident is not double-flagged by
           the first-class-(=) check above. *)
        check_poly_compare_apply ctx ~loc op args;
        List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | _ -> default.expr it e
  in
  (* Hot-function parameters are not closures: unwrap the leading
     [fun] chain of a manifest binding before applying the allocation
     checks to its body. *)
  let rec walk_hot_body it e =
    match e.pexp_desc with
    | Pexp_fun (label, default_e, pat, body) ->
        check_deprecated_label ctx ~loc:e.pexp_loc label;
        Option.iter (it.Ast_iterator.expr it) default_e;
        it.Ast_iterator.pat it pat;
        walk_hot_body it body
    | Pexp_newtype (_, body) -> walk_hot_body it body
    | _ -> it.Ast_iterator.expr it e
  in
  let structure_item it item =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } when List.mem txt ctx.hot_functions ->
                ctx.hot <- Some txt;
                it.Ast_iterator.pat it vb.pvb_pat;
                walk_hot_body it vb.pvb_expr;
                ctx.hot <- None
            | _ ->
                it.Ast_iterator.pat it vb.pvb_pat;
                it.Ast_iterator.expr it vb.pvb_expr)
          bindings
    | _ -> default.structure_item it item
  in
  { default with expr; structure_item }

let lint_structure ~hot_functions ~path structure =
  let ctx =
    {
      path;
      hot_functions;
      hot = None;
      guard_depth = 0;
      arity = collect_arities structure;
      diags = [];
    }
  in
  let it = make_iterator ctx in
  it.Ast_iterator.structure it structure;
  List.rev ctx.diags

let lint_signature ~path signature =
  (* Interfaces hold no expressions; walking them validates syntax and
     keeps the door open for signature-level rules. *)
  ignore path;
  let it = Ast_iterator.default_iterator in
  it.Ast_iterator.signature it signature;
  []

(* ------------------------------------------------------------------ *)
(* mli-coverage (path-list level, no parsing needed) *)

let mli_coverage ~ml_files ~mli_files =
  let mli_set = List.sort_uniq String.compare mli_files in
  let has_mli ml = List.mem (ml ^ "i") mli_set in
  List.filter_map
    (fun ml ->
      if starts_with "lib/" ml && not (has_mli ml) then
        Some
          {
            Lint_diag.rule = "mli-coverage";
            file = ml;
            line = 1;
            col = 0;
            msg =
              Printf.sprintf
                "%s has no matching .mli; every lib/ module must declare \
                 its interface"
                ml;
          }
      else None)
    ml_files
