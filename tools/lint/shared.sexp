; Manifest of state legitimately shared across domains, consumed by
; the domain-safety rules (shared-state / atomics-discipline /
; dls-discipline — see tools/lint/lint_domain.ml and DESIGN.md §8).
;
;   (atomics ...)  names an [Atomic.make] in this file may bind
;   (state ...)    mutable fields / arrays / refs domain-spawned code
;                  may touch
;   (note ...)     why the sharing is sound — mandatory, this is the
;                  review record
;
; Adding a name here is a claim that the sharing has a synchronization
; story (atomic, mutex, disjoint index ownership published by a join);
; the TSan stress suite (test/stress) is the dynamic cross-check.

(shared (file lib/runtime/pool.ml)
        (atomics cursor failure deques remaining)
        (state out filled)
        (note "the pool's own machinery: the static-mode cursor, the
               steal-mode packed-range deques, the remaining-work counter
               and the first-failure cell are the lock-free core; map's
               [out] slots and [filled] bytes have one writer per index
               (the domain that ran that chunk) and are read only after
               the joins in [run] establish happens-before"))

(shared (file lib/transport/domains.ml)
        (atomics chan live abort term)
        (state sends outputs backlog exhausted deliveries drops terms_rev)
        (note "per-link pulse counters ([chan]) and the liveness/abort/
               termination cells are atomics; [deliveries]/[drops]/
               [terms_rev]/[exhausted] are only written under [lock];
               [sends]/[outputs]/[backlog] are indexed by the owning
               node's id — one writer each — and read by the coordinator
               only after the pool join"))

(shared (file lib/harness/batch.ml)
        (state reports latencies)
        (note "per-job result and latency slots: the wave that owns a job
               is the only writer of its index, and the caller reads them
               after Pool.run joins"))

(shared (file lib/mc/mc.ml)
        (atomics tickets)
        (state states schedules replayed undone sleep_pruned dedup_pruned
               max_depth_seen truncated stopped aborted ce)
        (note "the checker's parallel phase: [tickets] is the global
               exploration-budget throttle, a fetch-and-add counter shared
               by the stealing workers — it only ever aborts a unit early,
               and aborted units are recomputed sequentially in the
               canonical repair pass, so verdicts and stats stay
               jobs-independent; the [acc] fields are per-unit accumulators
               allocated by the worker that runs the unit (one writer
               each) and folded by the coordinator only after the
               Pool.map join establishes happens-before"))
