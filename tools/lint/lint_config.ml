(* Configuration files of the analyzer:

   - [allow.sexp]: the reviewed list of intentional rule exceptions.
     Each entry suppresses one rule in one file and must carry a note
     saying why the exception is sound:

       (allow (rule deprecated-arg) (file test/test_sink.ml)
              (note "the equivalence test exists to exercise it"))

   - [hot.sexp]: the manifest of hot functions the allocation rule
     patrols:

       (hot (file lib/engine/envq.ml) (functions push pop head_seq))

   - [shared.sexp]: the manifest of state legitimately shared across
     domains, consumed by the domain-safety rules (lint_domain.ml).
     [(atomics ...)] names the bindings/fields an [Atomic.make] in
     that file may create; [(state ...)] names the mutable
     fields/arrays/refs domain-spawned code may touch; [(note ...)]
     says why the sharing is sound (disjoint index ownership, mutex,
     join happens-before, ...) and is mandatory:

       (shared (file lib/runtime/pool.ml)
               (atomics cursor failure)
               (state out filled)
               (note "one writer per index, published by the join")) *)

type allow_entry = { rule : string; file : string; note : string }

type shared_entry = {
  atomics : string list;
  state : string list;
  note : string;
}

let empty_shared = { atomics = []; state = []; note = "" }

exception Config_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Config_error s)) fmt

let field name items =
  List.find_map
    (function
      | Lint_sexp.List (Atom k :: rest) when String.equal k name -> Some rest
      | _ -> None)
    items

let atom_field name items =
  match field name items with
  | Some [ Lint_sexp.Atom v ] -> Some v
  | Some _ -> fail "field (%s ...) must hold exactly one atom" name
  | None -> None

let load_allow path =
  Lint_sexp.load path
  |> List.map (function
       | Lint_sexp.List (Atom "allow" :: fields) ->
           let get name =
             match atom_field name fields with
             | Some v -> v
             | None -> fail "%s: allow entry missing (%s ...)" path name
           in
           { rule = get "rule"; file = get "file"; note = get "note" }
       | _ -> fail "%s: every top-level form must be (allow ...)" path)

let load_hot path =
  Lint_sexp.load path
  |> List.map (function
       | Lint_sexp.List (Atom "hot" :: fields) ->
           let file =
             match atom_field "file" fields with
             | Some v -> v
             | None -> fail "%s: hot entry missing (file ...)" path
           in
           let functions =
             match field "functions" fields with
             | Some atoms ->
                 List.map
                   (function
                     | Lint_sexp.Atom a -> a
                     | List _ -> fail "%s: (functions ...) holds atoms" path)
                   atoms
             | None -> fail "%s: hot entry missing (functions ...)" path
           in
           (file, functions)
       | _ -> fail "%s: every top-level form must be (hot ...)" path)

let hot_functions manifest ~file =
  match List.assoc_opt file manifest with Some fns -> fns | None -> []

let load_shared path =
  Lint_sexp.load path
  |> List.map (function
       | Lint_sexp.List (Atom "shared" :: fields) ->
           let file =
             match atom_field "file" fields with
             | Some v -> v
             | None -> fail "%s: shared entry missing (file ...)" path
           in
           let names name =
             match field name fields with
             | Some atoms ->
                 List.map
                   (function
                     | Lint_sexp.Atom a -> a
                     | List _ -> fail "%s: (%s ...) holds atoms" path name)
                   atoms
             | None -> []
           in
           let note =
             match atom_field "note" fields with
             | Some v -> v
             | None -> fail "%s: shared entry for %s missing (note ...)" path file
           in
           (file, { atomics = names "atomics"; state = names "state"; note })
       | _ -> fail "%s: every top-level form must be (shared ...)" path)

let shared_for manifest ~file =
  match List.assoc_opt file manifest with
  | Some e -> e
  | None -> empty_shared
