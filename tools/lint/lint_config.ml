(* Configuration files of the analyzer:

   - [allow.sexp]: the reviewed list of intentional rule exceptions.
     Each entry suppresses one rule in one file and must carry a note
     saying why the exception is sound:

       (allow (rule deprecated-arg) (file test/test_sink.ml)
              (note "the equivalence test exists to exercise it"))

   - [hot.sexp]: the manifest of hot functions the allocation rule
     patrols:

       (hot (file lib/engine/envq.ml) (functions push pop head_seq)) *)

type allow_entry = { rule : string; file : string; note : string }

exception Config_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Config_error s)) fmt

let field name items =
  List.find_map
    (function
      | Lint_sexp.List (Atom k :: rest) when String.equal k name -> Some rest
      | _ -> None)
    items

let atom_field name items =
  match field name items with
  | Some [ Lint_sexp.Atom v ] -> Some v
  | Some _ -> fail "field (%s ...) must hold exactly one atom" name
  | None -> None

let load_allow path =
  Lint_sexp.load path
  |> List.map (function
       | Lint_sexp.List (Atom "allow" :: fields) ->
           let get name =
             match atom_field name fields with
             | Some v -> v
             | None -> fail "%s: allow entry missing (%s ...)" path name
           in
           { rule = get "rule"; file = get "file"; note = get "note" }
       | _ -> fail "%s: every top-level form must be (allow ...)" path)

let load_hot path =
  Lint_sexp.load path
  |> List.map (function
       | Lint_sexp.List (Atom "hot" :: fields) ->
           let file =
             match atom_field "file" fields with
             | Some v -> v
             | None -> fail "%s: hot entry missing (file ...)" path
           in
           let functions =
             match field "functions" fields with
             | Some atoms ->
                 List.map
                   (function
                     | Lint_sexp.Atom a -> a
                     | List _ -> fail "%s: (functions ...) holds atoms" path)
                   atoms
             | None -> fail "%s: hot entry missing (functions ...)" path
           in
           (file, functions)
       | _ -> fail "%s: every top-level form must be (hot ...)" path)

let hot_functions manifest ~file =
  match List.assoc_opt file manifest with Some fns -> fns | None -> []
