(* colring-lint: repo-aware static analysis for the colring engine.

   Usage:
     colring-lint --allow FILE --hot FILE [--shared FILE] [--json]
                  [--check-allow] PATH...

   Exit codes: 0 clean, 1 violations (or allowlist problems), 2 usage
   or configuration errors.

   --shared names the shared.sexp manifest consumed by the
   domain-safety rules; without it those rules run against an empty
   manifest (every cross-domain mutation flags).

   --json replaces the human-readable report with one machine-readable
   JSON object on stdout (violations + stale/missing allow entries +
   counts) — the CI artifact that makes rule hits diffable across PRs.
   Exit codes are unchanged.

   --check-allow only validates the manifests (every allow.sexp and
   shared.sexp entry must name an existing file) — the CI guard that
   keeps the escape hatches honest without a full tree walk. *)

open Colring_lint_core

let usage () =
  prerr_endline
    "usage: colring-lint --allow FILE --hot FILE [--shared FILE] [--json] \
     [--check-allow] PATH...";
  exit 2

let () =
  let allow_path = ref None in
  let hot_path = ref None in
  let shared_path = ref None in
  let check_allow = ref false in
  let json = ref false in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: v :: rest ->
        allow_path := Some v;
        parse rest
    | "--hot" :: v :: rest ->
        hot_path := Some v;
        parse rest
    | "--shared" :: v :: rest ->
        shared_path := Some v;
        parse rest
    | "--check-allow" :: rest ->
        check_allow := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | arg :: rest ->
        if String.starts_with ~prefix:"-" arg then usage ();
        roots := arg :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let allow_path = match !allow_path with Some p -> p | None -> usage () in
  let hot_path = match !hot_path with Some p -> p | None -> usage () in
  let allow, hot_manifest, shared_manifest =
    try
      ( Lint_config.load_allow allow_path,
        Lint_config.load_hot hot_path,
        match !shared_path with
        | Some p -> Lint_config.load_shared p
        | None -> [] )
    with
    | Lint_config.Config_error msg | Lint_sexp.Parse_error msg ->
      Printf.eprintf "colring-lint: configuration error: %s\n" msg;
      exit 2
  in
  if !check_allow then (
    let missing_allow =
      List.filter
        (fun (e : Lint_config.allow_entry) -> not (Sys.file_exists e.file))
        allow
    in
    let missing_shared =
      List.filter (fun (f, _) -> not (Sys.file_exists f)) shared_manifest
    in
    List.iter
      (fun (e : Lint_config.allow_entry) ->
        Printf.eprintf
          "colring-lint: allow.sexp entry (rule %s) names missing file %s\n"
          e.rule e.file)
      missing_allow;
    List.iter
      (fun (f, _) ->
        Printf.eprintf "colring-lint: shared.sexp entry names missing file %s\n"
          f)
      missing_shared;
    if missing_allow = [] && missing_shared = [] then (
      Printf.printf
        "colring-lint: %d allow entries and %d shared entries, all files \
         present\n"
        (List.length allow)
        (List.length shared_manifest);
      exit 0)
    else exit 1);
  if !roots = [] then usage ();
  let result =
    Lint_driver.lint_tree ~hot_manifest ~shared_manifest ~allow
      (List.rev !roots)
  in
  let violations = List.length result.Lint_driver.kept in
  let dirty =
    violations > 0 || result.stale <> [] || result.missing <> []
  in
  if !json then begin
    let entry_json (e : Lint_config.allow_entry) =
      Printf.sprintf {|{"rule":"%s","file":"%s"}|}
        (Lint_diag.json_escape e.rule)
        (Lint_diag.json_escape e.file)
    in
    Printf.printf
      {|{"violations":[%s],"stale_allow":[%s],"missing_allow":[%s],"violation_count":%d,"clean":%b}|}
      (String.concat "," (List.map Lint_diag.to_json result.kept))
      (String.concat "," (List.map entry_json result.stale))
      (String.concat "," (List.map entry_json result.missing))
      violations (not dirty);
    print_newline ()
  end
  else begin
    List.iter
      (fun d -> print_endline (Lint_diag.to_string d))
      result.Lint_driver.kept;
    List.iter
      (fun (e : Lint_config.allow_entry) ->
        Printf.eprintf
          "colring-lint: stale allow.sexp entry (rule %s, file %s) suppressed \
           nothing — remove it\n"
          e.rule e.file)
      result.stale;
    List.iter
      (fun (e : Lint_config.allow_entry) ->
        Printf.eprintf
          "colring-lint: allow.sexp entry (rule %s) names missing file %s\n"
          e.rule e.file)
      result.missing
  end;
  if dirty then (
    Printf.eprintf "colring-lint: %d violation%s\n" violations
      (if violations = 1 then "" else "s");
    exit 1)
  else if not !json then print_endline "colring-lint: clean"
