(* colring-lint: repo-aware static analysis for the colring engine.

   Usage:
     colring-lint --allow FILE --hot FILE [--check-allow] PATH...

   Exit codes: 0 clean, 1 violations (or allowlist problems), 2 usage
   or configuration errors.

   --check-allow only validates the allowlist (every entry must name
   an existing file) — the CI guard that keeps allow.sexp honest
   without a full tree walk. *)

open Colring_lint_core

let usage () =
  prerr_endline
    "usage: colring-lint --allow FILE --hot FILE [--check-allow] PATH...";
  exit 2

let () =
  let allow_path = ref None in
  let hot_path = ref None in
  let check_allow = ref false in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: v :: rest ->
        allow_path := Some v;
        parse rest
    | "--hot" :: v :: rest ->
        hot_path := Some v;
        parse rest
    | "--check-allow" :: rest ->
        check_allow := true;
        parse rest
    | arg :: rest ->
        if String.starts_with ~prefix:"-" arg then usage ();
        roots := arg :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let allow_path = match !allow_path with Some p -> p | None -> usage () in
  let hot_path = match !hot_path with Some p -> p | None -> usage () in
  let allow, hot_manifest =
    try (Lint_config.load_allow allow_path, Lint_config.load_hot hot_path)
    with
    | Lint_config.Config_error msg | Lint_sexp.Parse_error msg ->
      Printf.eprintf "colring-lint: configuration error: %s\n" msg;
      exit 2
  in
  if !check_allow then (
    let missing =
      List.filter
        (fun (e : Lint_config.allow_entry) -> not (Sys.file_exists e.file))
        allow
    in
    List.iter
      (fun (e : Lint_config.allow_entry) ->
        Printf.eprintf
          "colring-lint: allow.sexp entry (rule %s) names missing file %s\n"
          e.rule e.file)
      missing;
    if missing = [] then (
      Printf.printf "colring-lint: %d allow entries, all files present\n"
        (List.length allow);
      exit 0)
    else exit 1);
  if !roots = [] then usage ();
  let result =
    Lint_driver.lint_tree ~hot_manifest ~allow (List.rev !roots)
  in
  List.iter
    (fun d -> print_endline (Lint_diag.to_string d))
    result.Lint_driver.kept;
  List.iter
    (fun (e : Lint_config.allow_entry) ->
      Printf.eprintf
        "colring-lint: stale allow.sexp entry (rule %s, file %s) suppressed \
         nothing — remove it\n"
        e.rule e.file)
    result.stale;
  List.iter
    (fun (e : Lint_config.allow_entry) ->
      Printf.eprintf
        "colring-lint: allow.sexp entry (rule %s) names missing file %s\n"
        e.rule e.file)
    result.missing;
  let violations = List.length result.kept in
  if violations > 0 || result.stale <> [] || result.missing <> [] then (
    Printf.eprintf "colring-lint: %d violation%s\n" violations
      (if violations = 1 then "" else "s");
    exit 1)
  else print_endline "colring-lint: clean"
