(* Domain-safety rules: the multicore engine's shared-memory contracts
   as machine checks over the Parsetree.

   Three rule families, all driven by the [shared.sexp] manifest (the
   reviewed declaration of state that is legitimately shared across
   domains — see [Lint_config.load_shared]):

   - [shared-state]: walks every closure handed to [Pool.run] /
     [Pool.map] / [Domain.spawn] — plus the bodies of same-unit
     functions those closures call, transitively — and flags any
     mutable-field write or read, array/[Bytes] write, or [ref]
     mutation/deref whose target is neither allocated inside the
     walked code nor declared in the manifest's [(state ...)] list.
     Functions that (transitively) spawn are treated as spawn sites
     themselves, so a closure passed to a local wrapper around
     [Domain.spawn] is still patrolled.

   - [atomics-discipline]: rejects the lost-update pattern
     ([Atomic.set a] fed by [Atomic.get a] of the same atomic —
     read-modify-write must go through [fetch_and_add] or a CAS loop),
     flags CAS retry loops in hot.sexp functions that spin without a
     [Domain.cpu_relax] backoff, and requires every [Atomic.make] in
     lib/ to bind a name declared in the manifest's [(atomics ...)]
     list — an atomic nobody declared is shared state nobody reviewed.

   - [dls-discipline]: [Domain.DLS.new_key] must be a top-level
     binding (a key minted per call defeats the cache and leaks), and
     a DLS payload (a [Domain.DLS.get] binding) must not escape the
     domain that looked it up: it may not be captured by a nested
     closure or stored into other state.

   Scope: like the determinism rule these patrol lib/, bin/ and bench/
   but not test/ — tests deliberately hammer the pool with raw shared
   arrays to provoke the very races the rules forbid elsewhere.  The
   [Atomic.make] manifest requirement and the DLS rules apply to lib/
   only (binaries may keep a process-local atomic without ceremony).

   Everything here is name-based over the untyped AST: no types, no
   cross-unit bodies.  False positives are resolved by a reviewed
   shared.sexp (or allow.sexp) entry; cross-unit mutation helpers are
   out of scope by construction and belong behind their module's own
   contract. *)

open Parsetree
module SSet = Set.Make (String)

type ctx = {
  path : string;
  hot_functions : string list;
  shared : Lint_config.shared_entry;
  mutable diags : Lint_diag.t list;
}

let report ctx ~rule ~loc fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.diags <- Lint_diag.make ~rule ~file:ctx.path ~loc msg :: ctx.diags)
    fmt

let patrolled path =
  String.starts_with ~prefix:"lib/" path
  || String.starts_with ~prefix:"bin/" path
  || String.starts_with ~prefix:"bench/" path

let in_lib path = String.starts_with ~prefix:"lib/" path

(* Innermost-last components of a (possibly module-qualified) ident:
   [Colring_runtime.Pool.run] and [Pool.run] both end
   ["run"; "Pool"; ...]. *)
let rev_flat lid = List.rev (Longident.flatten lid)

let is_spawn_lid lid =
  match rev_flat lid with
  | "spawn" :: "Domain" :: _ -> true
  | ("run" | "map") :: "Pool" :: _ -> true
  | _ -> false

let expr_to_string e = Format.asprintf "%a" Pprintast.expression e

let iter_expr f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e

let expr_contains pred e =
  let found = ref false in
  iter_expr (fun e -> if pred e then found := true) e;
  !found

let applies_lid pred e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> pred txt
  | _ -> false

let mentions_name name e =
  expr_contains
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> String.equal x name
      | _ -> false)
    e

(* ------------------------------------------------------------------ *)
(* Unit-wide pre-pass: every let-bound name (at any depth, including
   functor and local bindings), the unit's mutable record fields, and
   the set of functions that transitively reach a spawn site. *)

type unit_info = {
  bindings : (string, expression list) Hashtbl.t;
  mutable_fields : SSet.t;
  spawners : SSet.t;
}

let collect_unit structure =
  let bindings = Hashtbl.create 64 in
  let mutable_fields = ref SSet.empty in
  let add_binding name e =
    let prev =
      match Hashtbl.find_opt bindings name with Some l -> l | None -> []
    in
    Hashtbl.replace bindings name (e :: prev)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> add_binding txt vb.pvb_expr
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              List.iter
                (fun ld ->
                  if ld.pld_mutable = Asttypes.Mutable then
                    mutable_fields := SSet.add ld.pld_name.txt !mutable_fields)
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  let spawners = ref SSet.empty in
  let body_spawns spawners e =
    expr_contains
      (applies_lid (fun lid ->
           is_spawn_lid lid
           ||
           match lid with
           | Longident.Lident f -> SSet.mem f spawners
           | _ -> false))
      e
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name exprs ->
        if
          (not (SSet.mem name !spawners))
          && List.exists (body_spawns !spawners) exprs
        then begin
          spawners := SSet.add name !spawners;
          changed := true
        end)
      bindings
  done;
  { bindings; mutable_fields = !mutable_fields; spawners = !spawners }

(* ------------------------------------------------------------------ *)
(* shared-state *)

(* Allocations that make a binding domain-private: the walked code
   made the object itself, so no other domain can hold it. *)
let rec is_local_alloc e =
  match e.pexp_desc with
  | Pexp_record _ | Pexp_array _ | Pexp_tuple _ -> true
  | Pexp_constraint (e, _) -> is_local_alloc e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match rev_flat txt with
      | [ "ref" ] -> true
      | "get" :: "DLS" :: "Domain" :: _ -> true
      | fn :: ("Array" | "Bytes" | "Buffer" | "Hashtbl" | "Queue" | "Stack")
        :: _ -> (
          match fn with
          | "make" | "init" | "create" | "copy" | "sub" | "of_list" | "of_seq"
          | "of_string" | "append" | "concat" | "map" | "mapi" | "make_matrix"
            ->
              true
          | _ -> false)
      | _ -> false)
  | _ -> false

(* Resolve a mutation target to the name the manifest would declare:
   the base variable, or the record field it was fetched from, chasing
   through [Array.get]/[Bytes.get] chains ([grid.(i).(j) <- v] resolves
   to [grid]). *)
type target = Var of string | Field of string

let rec target_base e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Var (Longident.last txt))
  | Pexp_field (_, { txt; _ }) -> Some (Field (Longident.last txt))
  | Pexp_constraint (e, _) -> target_base e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a) :: _) -> (
      match rev_flat txt with
      | ("get" | "unsafe_get") :: ("Array" | "Bytes") :: _ -> target_base a
      | [ "!" ] -> target_base a
      | _ -> None)
  | _ -> None

let walk_shared_state ctx info roots =
  (* One locals table and one memo across all roots: a function body
     is walked (and its findings reported) once even when several
     spawn sites reach it. *)
  let locals = Hashtbl.create 32 in
  let walked = Hashtbl.create 16 in
  let manifested name = List.mem name ctx.shared.Lint_config.state in
  let target_ok = function
    | Some (Var x) -> Hashtbl.mem locals x || manifested x
    | Some (Field f) -> manifested f
    | None -> false
  in
  let describe = function
    | Some (Var x) -> Printf.sprintf "[%s]" x
    | Some (Field f) -> Printf.sprintf "field [%s]" f
    | None -> "an unresolvable target"
  in
  let flag ~loc ~what target =
    if not (target_ok target) then
      report ctx ~rule:"shared-state" ~loc
        "%s %s inside domain-spawned code: not locally allocated and not \
         declared in shared.sexp (state ...)"
        what (describe target)
  in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } when is_local_alloc vb.pvb_expr ->
                Hashtbl.replace locals txt ()
            | _ -> ())
          vbs
    | Pexp_setfield (base, { txt; _ }, _) ->
        let f = Longident.last txt in
        let base_local =
          match target_base base with
          | Some (Var x) -> Hashtbl.mem locals x
          | _ -> false
        in
        if not (base_local || manifested f) then
          report ctx ~rule:"shared-state" ~loc:e.pexp_loc
            "write to mutable field [%s] inside domain-spawned code: the \
             record is not locally allocated and the field is not declared \
             in shared.sexp (state ...)"
            f
    | Pexp_field (base, { txt; _ }) ->
        let f = Longident.last txt in
        if SSet.mem f info.mutable_fields then begin
          let base_local =
            match target_base base with
            | Some (Var x) -> Hashtbl.mem locals x
            | _ -> false
          in
          if not (base_local || manifested f) then
            report ctx ~rule:"shared-state" ~loc:e.pexp_loc
              "read of mutable field [%s] inside domain-spawned code: \
               unsynchronized cross-domain reads are racy — declare it in \
               shared.sexp (state ...) or go through an Atomic"
              f
        end
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        match (rev_flat txt, args) with
        | ("set" | "unsafe_set" | "fill") :: (("Array" | "Bytes") as m) :: _,
          (_, t) :: _ ->
            flag ~loc:e.pexp_loc
              ~what:(Printf.sprintf "%s write to" m)
              (target_base t)
        | [ ":=" ], (_, t) :: _ ->
            flag ~loc:e.pexp_loc ~what:"ref assignment to" (target_base t)
        | [ ("incr" | "decr") ], [ (_, t) ] ->
            flag ~loc:e.pexp_loc ~what:"ref mutation of" (target_base t)
        | [ "!" ], [ (_, t) ] ->
            flag ~loc:e.pexp_loc ~what:"ref deref of" (target_base t)
        | [ f ], _ when Hashtbl.mem info.bindings f ->
            if not (Hashtbl.mem walked f) then begin
              Hashtbl.replace walked f ();
              List.iter
                (fun body -> it.Ast_iterator.expr it body)
                (Hashtbl.find info.bindings f)
            end
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  List.iter
    (fun root ->
      match root with
      | `Closure e -> it.Ast_iterator.expr it e
      | `Named f ->
          if not (Hashtbl.mem walked f) then begin
            Hashtbl.replace walked f ();
            match Hashtbl.find_opt info.bindings f with
            | Some bodies -> List.iter (it.Ast_iterator.expr it) bodies
            | None -> ()
          end)
    roots

(* Collect the domain roots: closure literals and same-unit function
   names passed as arguments at a spawn site. *)
let collect_roots info structure =
  let roots = ref [] in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let spawnish =
          is_spawn_lid txt
          ||
          match txt with
          | Longident.Lident f -> SSet.mem f info.spawners
          | _ -> false
        in
        if spawnish then
          List.iter
            (fun (_, a) ->
              match a.pexp_desc with
              | Pexp_fun _ | Pexp_function _ -> roots := `Closure a :: !roots
              | Pexp_ident { txt = Longident.Lident f; _ }
                when Hashtbl.mem info.bindings f ->
                  roots := `Named f :: !roots
              | _ -> ())
            args
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  List.rev !roots

(* ------------------------------------------------------------------ *)
(* atomics-discipline *)

let atomics_pass ctx structure =
  let manifested name = List.mem name ctx.shared.Lint_config.atomics in
  (* Name context: the let-binding and record-field names enclosing
     the current expression, innermost first — what an [Atomic.make]
     here would be known as. *)
  let names = ref [] in
  let with_name n f =
    names := n :: !names;
    f ();
    names := List.tl !names
  in
  let get_targets v =
    let acc = ref [] in
    iter_expr
      (fun e ->
        match e.pexp_desc with
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, t) ])
          when (match rev_flat txt with
               | "get" :: "Atomic" :: _ -> true
               | _ -> false) ->
            acc := expr_to_string t :: !acc
        | _ -> ())
      v;
    !acc
  in
  let expr it e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        (match (rev_flat txt, args) with
        | "set" :: "Atomic" :: _, [ (_, a); (_, v) ] ->
            let a_str = expr_to_string a in
            if List.exists (String.equal a_str) (get_targets v) then
              report ctx ~rule:"atomics-discipline" ~loc:e.pexp_loc
                "lost update: [Atomic.set %s] is fed by [Atomic.get %s] — \
                 another domain's write between the get and the set is \
                 silently discarded; use [Atomic.fetch_and_add] or a \
                 compare_and_set loop"
                a_str a_str
        | "make" :: "Atomic" :: _, _ when in_lib ctx.path ->
            let name =
              match !names with n :: _ -> n | [] -> "<anonymous>"
            in
            if not (manifested name) then
              report ctx ~rule:"atomics-discipline" ~loc:e.pexp_loc
                "[Atomic.make] binds [%s], which is not declared in \
                 shared.sexp (atomics ...): every atomic in lib/ is \
                 cross-domain state and must be reviewed"
                name
        | _ -> ());
        Ast_iterator.default_iterator.expr it e)
    | Pexp_record (fields, base) ->
        (match base with Some b -> it.Ast_iterator.expr it b | None -> ());
        List.iter
          (fun (lid, value) ->
            with_name (Longident.last lid.Asttypes.txt) (fun () ->
                it.Ast_iterator.expr it value))
          fields
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let value_binding it vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } ->
        (* CAS retry loops in hot functions must back off: a failed
           compare_and_set means another domain owns the cache line —
           re-spinning without [Domain.cpu_relax] ruins it for the
           winner. *)
        if
          List.mem txt ctx.hot_functions
          && expr_contains
               (applies_lid (fun lid ->
                    match rev_flat lid with
                    | "compare_and_set" :: "Atomic" :: _ -> true
                    | _ -> false))
               vb.pvb_expr
          && expr_contains
               (applies_lid (fun lid ->
                    match lid with
                    | Longident.Lident f -> String.equal f txt
                    | _ -> false))
               vb.pvb_expr
          && not
               (expr_contains
                  (applies_lid (fun lid ->
                       match rev_flat lid with
                       | "cpu_relax" :: "Domain" :: _ -> true
                       | _ -> false))
                  vb.pvb_expr)
        then
          report ctx ~rule:"atomics-discipline" ~loc:vb.pvb_loc
            "hot function [%s] retries a compare_and_set loop without \
             [Domain.cpu_relax] backoff"
            txt;
        with_name txt (fun () ->
            Ast_iterator.default_iterator.value_binding it vb)
    | _ -> Ast_iterator.default_iterator.value_binding it vb
  in
  let it = { Ast_iterator.default_iterator with expr; value_binding } in
  it.structure it structure

(* ------------------------------------------------------------------ *)
(* dls-discipline *)

let dls_pass ctx structure =
  let fun_depth = ref 0 in
  (* Names currently bound to a [Domain.DLS.get] payload. *)
  let dls_locals = ref SSet.empty in
  let is_new_key lid =
    match rev_flat lid with
    | "new_key" :: "DLS" :: "Domain" :: _ -> true
    | _ -> false
  in
  let is_dls_get e =
    applies_lid
      (fun lid ->
        match rev_flat lid with
        | "get" :: "DLS" :: "Domain" :: _ -> true
        | _ -> false)
      e
  in
  let check_stored ~loc v =
    SSet.iter
      (fun x ->
        if mentions_name x v then
          report ctx ~rule:"dls-discipline" ~loc
            "DLS payload [%s] is stored into other state: the payload \
             belongs to the domain that called [Domain.DLS.get] and must \
             not outlive its closure"
            x)
      !dls_locals
  in
  let expr it e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        (if is_new_key txt && !fun_depth > 0 then
           report ctx ~rule:"dls-discipline" ~loc:e.pexp_loc
             "[Domain.DLS.new_key] inside a function: keys must be \
              top-level bindings, or every call mints a fresh key and the \
              per-domain cache never hits");
        (match (rev_flat txt, args) with
        | ("set" | "unsafe_set" | "fill") :: ("Array" | "Bytes") :: _, _ -> (
            match List.rev args with
            | (_, v) :: _ -> check_stored ~loc:e.pexp_loc v
            | [] -> ())
        | [ ":=" ], [ _; (_, v) ] -> check_stored ~loc:e.pexp_loc v
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
    | Pexp_setfield (_, _, v) ->
        check_stored ~loc:e.pexp_loc v;
        Ast_iterator.default_iterator.expr it e
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } when is_dls_get vb.pvb_expr ->
                dls_locals := SSet.add txt !dls_locals
            | _ -> ())
          vbs;
        Ast_iterator.default_iterator.expr it e
    | Pexp_fun _ | Pexp_function _ ->
        let escaping = SSet.filter (fun x -> mentions_name x e) !dls_locals in
        SSet.iter
          (fun x ->
            report ctx ~rule:"dls-discipline" ~loc:e.pexp_loc
              "DLS payload [%s] is captured by a closure: the payload \
               belongs to the domain that called [Domain.DLS.get] — another \
               domain running this closure would race on it"
              x)
          escaping;
        (* Descend with the escaping names hidden so one leak is one
           diagnostic, not one per use site. *)
        let saved = !dls_locals in
        dls_locals := SSet.diff saved escaping;
        incr fun_depth;
        Ast_iterator.default_iterator.expr it e;
        decr fun_depth;
        dls_locals := saved
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure

(* ------------------------------------------------------------------ *)

let lint ~hot_functions ~shared ~path structure =
  let ctx = { path; hot_functions; shared; diags = [] } in
  if patrolled path then begin
    let info = collect_unit structure in
    walk_shared_state ctx info (collect_roots info structure);
    atomics_pass ctx structure;
    if in_lib path then dls_pass ctx structure
  end;
  List.rev ctx.diags
