(* A lint diagnostic: one contract violation at one source location.
   [file] is the repo-relative path the rule scoping was computed
   against (the "virtual path" when linting fixtures). *)

type t = { rule : string; file : string; line : int; col : int; msg : string }

let make ~rule ~file ~loc msg =
  let p = loc.Location.loc_start in
  { rule; file; line = p.Lexing.pos_lnum; col = p.pos_cnum - p.pos_bol; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg

(* Hand-rolled JSON escaping: the analyzer links only compiler-libs. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"col":%d,"msg":"%s"}|}
    (json_escape d.rule) (json_escape d.file) d.line d.col (json_escape d.msg)
