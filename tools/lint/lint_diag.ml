(* A lint diagnostic: one contract violation at one source location.
   [file] is the repo-relative path the rule scoping was computed
   against (the "virtual path" when linting fixtures). *)

type t = { rule : string; file : string; line : int; col : int; msg : string }

let make ~rule ~file ~loc msg =
  let p = loc.Location.loc_start in
  { rule; file; line = p.Lexing.pos_lnum; col = p.pos_cnum - p.pos_bol; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg
