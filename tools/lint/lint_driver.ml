(* File discovery, parsing, and allowlist application.

   The driver walks the requested roots (lib/ bin/ bench/ test/ in the
   @lint alias), lints every .ml/.mli it finds, checks mli coverage
   over the collected paths, and then filters the diagnostics through
   allow.sexp.  Allow entries are themselves checked: an entry whose
   file no longer exists, or that suppressed nothing this run, is an
   error — the allowlist self-cleans. *)

let normalize path =
  if String.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

(* ------------------------------------------------------------------ *)
(* Discovery *)

let skip_dir name =
  String.equal name "_build"
  || String.equal name "lint_fixtures"
  || (String.length name > 0 && Char.equal name.[0] '.')

let is_source name =
  (String.length name > 0 && not (Char.equal name.[0] '.'))
  && (Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli")

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           let child = Filename.concat path name in
           if Sys.is_directory child then
             if skip_dir name then acc else walk acc child
           else if is_source name then child :: acc
           else acc)
         acc
  else if is_source (Filename.basename path) then path :: acc
  else acc

let collect_files roots =
  List.fold_left walk [] roots |> List.rev_map normalize
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Parsing and per-file linting *)

let parse_error_diag path exn =
  let loc =
    match exn with
    | Syntaxerr.Error e -> Syntaxerr.location_of_error e
    | Lexer.Error (_, loc) -> loc
    | _ -> Location.in_file path
  in
  [
    Lint_diag.make ~rule:"parse-error" ~file:path ~loc
      (Printf.sprintf "does not parse: %s" (Printexc.to_string exn));
  ]

(* [as_path] is the repo-relative path rule scoping is computed
   against; it defaults to the (normalized) on-disk path.  The fixture
   tests lint files stored under test/lint_fixtures/ "as" virtual
   lib/engine/... paths. *)
let lint_file ?as_path ~hot_manifest ?(shared_manifest = []) path =
  let rpath = match as_path with Some p -> p | None -> normalize path in
  let src = In_channel.with_open_bin path In_channel.input_all in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf rpath;
  if Filename.check_suffix rpath ".mli" then
    try Lint_rules.lint_signature ~path:rpath (Parse.interface lexbuf)
    with exn -> parse_error_diag rpath exn
  else
    try
      let hot_functions =
        Lint_config.hot_functions hot_manifest ~file:rpath
      in
      let structure = Parse.implementation lexbuf in
      Lint_rules.lint_structure ~hot_functions ~path:rpath structure
      @ Lint_domain.lint ~hot_functions
          ~shared:(Lint_config.shared_for shared_manifest ~file:rpath)
          ~path:rpath structure
    with exn -> parse_error_diag rpath exn

(* ------------------------------------------------------------------ *)
(* Allowlist application *)

type result = {
  kept : Lint_diag.t list;  (** diagnostics not covered by allow.sexp *)
  stale : Lint_config.allow_entry list;  (** entries that suppressed nothing *)
  missing : Lint_config.allow_entry list;  (** entries naming absent files *)
}

let entry_matches (e : Lint_config.allow_entry) (d : Lint_diag.t) =
  String.equal e.rule d.rule && String.equal e.file d.file

let apply_allowlist entries diags =
  let used = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun d ->
        match List.find_opt (fun e -> entry_matches e d) entries with
        | Some e ->
            Hashtbl.replace used (e.Lint_config.rule, e.file) ();
            false
        | None -> true)
      diags
  in
  let stale =
    List.filter
      (fun (e : Lint_config.allow_entry) ->
        not (Hashtbl.mem used (e.rule, e.file)))
      entries
  in
  let missing =
    List.filter
      (fun (e : Lint_config.allow_entry) -> not (Sys.file_exists e.file))
      entries
  in
  { kept; stale; missing }

(* ------------------------------------------------------------------ *)
(* Whole-tree run *)

let lint_tree ~hot_manifest ?(shared_manifest = []) ~allow roots =
  let files = collect_files roots in
  let ml_files = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  let mli_files = List.filter (fun f -> Filename.check_suffix f ".mli") files in
  let diags =
    List.concat_map (fun f -> lint_file ~hot_manifest ~shared_manifest f) files
    @ Lint_rules.mli_coverage ~ml_files ~mli_files
  in
  apply_allowlist allow (List.sort_uniq Lint_diag.compare diags)
