(* A minimal s-expression reader for the lint configuration files
   (allow.sexp, hot.sexp).  Atoms are bare words or double-quoted
   strings; [;] starts a comment running to end of line.  No external
   dependency: the lint tool must build from compiler-libs alone. *)

type t = Atom of string | List of t list

exception Parse_error of string

let parse_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blank ()
    | Some ';' ->
        while !pos < n && not (Char.equal src.[!pos] '\n') do
          advance ()
        done;
        skip_blank ()
    | _ -> ()
  in
  let read_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Parse_error "dangling escape"));
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"') | None -> ()
      | Some _ ->
          advance ();
          go ()
    in
    go ();
    String.sub src start (!pos - start)
  in
  let rec read_one () =
    skip_blank ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = read_list [] in
        List items
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> Atom (read_quoted ())
    | Some _ -> Atom (read_atom ())
  and read_list acc =
    skip_blank ();
    match peek () with
    | None -> raise (Parse_error "unterminated list")
    | Some ')' ->
        advance ();
        List.rev acc
    | Some _ -> read_list (read_one () :: acc)
  in
  let rec top acc =
    skip_blank ();
    if !pos >= n then List.rev acc else top (read_one () :: acc)
  in
  top []

let load path =
  let src = In_channel.with_open_bin path In_channel.input_all in
  try parse_string src
  with Parse_error msg -> raise (Parse_error (path ^ ": " ^ msg))
